package core

import (
	"fmt"
	"math"
	"sync"

	"dmc/internal/conc"
)

// warmPoolStripes is the lock-striping width of a WarmPool: shape keys
// hash onto independent mutexes so a 64-network fleet storm does not
// serialize its check-outs on one lock.
const warmPoolStripes = 16

// nObjectives sizes the per-objective positional sets (quality,
// min-cost, random — the solveObjective enum).
const nObjectives = 3

// warmKey identifies the network shape a pooled warm solver was primed
// on. A solver whose last Resolve saw the same shape re-solves warm; a
// mismatched one transparently re-primes cold (Resolve's own guard), so
// the key is a hit-rate optimization, never a correctness requirement.
type warmKey struct {
	nPaths  int
	trans   int
	hasCost bool
}

func keyOf(n *Network) warmKey {
	return warmKey{
		nPaths:  len(n.Paths),
		trans:   n.transmissions(),
		hasCost: !math.IsInf(n.CostBound, 1),
	}
}

func (k warmKey) stripe() int {
	h := uint64(k.nPaths)*0x9e3779b97f4a7c15 + uint64(k.trans)*0x85ebca6b
	if k.hasCost {
		h += 0xc2b2ae35
	}
	return int((h >> 32) % warmPoolStripes)
}

type warmStripe struct {
	mu sync.Mutex
	m  map[warmKey][]*Solver
}

// sessionSlot is one session's persistent warm solver. The slot mutex
// serializes solves on the same key (a Solver is not safe for concurrent
// use); distinct keys never contend.
type sessionSlot struct {
	mu sync.Mutex
	sv *Solver
	// shape is the last solved network shape, for retiring the solver to
	// the right stripe on DropSession.
	shape warmKey
	// dropped marks a slot DropSession detached while a solve was
	// waiting on its mutex: the late solve runs on a throwaway solver.
	dropped bool
}

// WarmPool shares persistent incremental re-solve state across fleet
// re-solve storms: a striped, shape-keyed pool of warm Solvers, with two
// access idioms on top of it.
//
// Session-keyed (SolveSession, SolveSessionMinCost, SolveSessionRandom,
// DropSession): the caller names each session with a stable key and the
// pool keeps one warm solver per key, so basis/column affinity survives
// fleet reordering, adds, and drops — the online-serving idiom, where a
// fleet is a churning set of identified sessions, not a fixed slice.
// Distinct keys solve concurrently; calls on the same key serialize.
//
// Positional (SolveMany, SolveManyMinCost, SolveManyRandom): when a
// batch has the same size as the pool's previous batch for the same
// objective, network i gets the solver that solved index i last time —
// the fleet-sweep idiom keeps each drifting network at a stable index,
// and a warm state is only genuinely warm for the network whose drift
// trajectory primed it. Solvers that cannot be matched by position
// (first batch, changed batch size, a concurrent batch already claimed
// the positional set) fall back to the shape-keyed stripes, where any
// same-shaped warm solver still saves the structural work; a full
// mismatch just re-primes cold inside Resolve.
//
// Within one batch each pooled solver serves at most one network
// (checked-out solvers return to the pool only after the whole batch
// completes), so the returned Solutions are never clobbered mid-batch.
// They DO share storage with the pooled warm states: a later solve
// drawing the same solver — the next SolveMany on the pool, or the next
// SolveSession on the same key — rebuilds that storage in place,
// invalidating them. Extract what you need from a Solution before
// issuing the next solve that could reuse its solver, or use the
// package-level SolveMany, which never reuses result storage. This
// contract is machine-checked in consumer packages by the poolescape
// analyzer (internal/analysis/poolescape, run via `make lint`).
//
// A WarmPool is safe for concurrent use; concurrent batches simply
// check out disjoint solvers.
type WarmPool struct {
	mu sync.Mutex
	// byIdx holds the previous batch's solvers by network index, one
	// positional set per objective (reusing a quality-warm solver for a
	// min-cost batch would always re-prime cold: the resolve state is
	// objective-keyed).
	byIdx [nObjectives][]*Solver

	stripes [warmPoolStripes]warmStripe

	smu      sync.Mutex
	sessions map[string]*sessionSlot
}

// NewWarmPool returns an empty warm solver pool.
func NewWarmPool() *WarmPool {
	p := &WarmPool{sessions: make(map[string]*sessionSlot)}
	for i := range p.stripes {
		p.stripes[i].m = make(map[warmKey][]*Solver)
	}
	return p
}

// acquire pops a warm solver primed on the key's shape, or returns a
// fresh one when none is pooled.
func (p *WarmPool) acquire(k warmKey) *Solver {
	st := &p.stripes[k.stripe()]
	st.mu.Lock()
	defer st.mu.Unlock()
	stack := st.m[k]
	if len(stack) == 0 {
		return NewSolver()
	}
	s := stack[len(stack)-1]
	st.m[k] = stack[:len(stack)-1]
	return s
}

// release returns a solver to its shape's stack.
func (p *WarmPool) release(k warmKey, s *Solver) {
	st := &p.stripes[k.stripe()]
	st.mu.Lock()
	st.m[k] = append(st.m[k], s)
	st.mu.Unlock()
}

// SolveMany solves the quality maximization (Eq. 10) for every network
// across min(GOMAXPROCS, len(nets)) workers, each solve running on a
// pooled warm solver's incremental path (Solver.Resolve). Results are
// returned in input order; on error the first failure is returned
// together with the partial results, and entries that did not solve are
// nil. See the WarmPool type comment for the result-invalidation
// contract.
func (p *WarmPool) SolveMany(nets []*Network) ([]*Solution, error) {
	return p.solveMany(objQuality, nets, func(sv *Solver, i int) (*Solution, error) {
		return sv.Resolve(nets[i])
	})
}

// SolveManyMinCost is SolveMany for the §VI-A cost minimization: every
// network solves to its own quality floor (minQuality[i], one entry per
// network) on a pooled warm solver's incremental path
// (Solver.ResolveMinCost). An unattainable floor fails that entry with
// ErrInfeasible like the one-shot solve would.
func (p *WarmPool) SolveManyMinCost(nets []*Network, minQuality []float64) ([]*Solution, error) {
	if len(minQuality) != len(nets) {
		return nil, fmt.Errorf("core: %d quality floors for %d networks", len(minQuality), len(nets))
	}
	return p.solveMany(objMinCost, nets, func(sv *Solver, i int) (*Solution, error) {
		return sv.ResolveMinCost(nets[i], minQuality[i])
	})
}

// SolveManyRandom is SolveMany for the §VI-B random-delay model: every
// network solves with its own timeout table (to[i], one entry per
// network) on a pooled warm solver's incremental path
// (Solver.ResolveQualityRandom).
func (p *WarmPool) SolveManyRandom(nets []*Network, to []*Timeouts) ([]*Solution, error) {
	if len(to) != len(nets) {
		return nil, fmt.Errorf("core: %d timeout tables for %d networks", len(to), len(nets))
	}
	return p.solveMany(objRandom, nets, func(sv *Solver, i int) (*Solution, error) {
		return sv.ResolveQualityRandom(nets[i], to[i])
	})
}

func (p *WarmPool) solveMany(obj solveObjective, nets []*Network, run func(sv *Solver, i int) (*Solution, error)) ([]*Solution, error) {
	// Claim the objective's positional solver set when the batch shape
	// allows it.
	p.mu.Lock()
	var byIdx []*Solver
	if len(p.byIdx[obj]) == len(nets) {
		byIdx, p.byIdx[obj] = p.byIdx[obj], nil
	}
	p.mu.Unlock()

	sols := make([]*Solution, len(nets))
	solvers := make([]*Solver, len(nets))
	err := conc.ForEach(len(nets), func(i int) error {
		var sv *Solver
		if byIdx != nil {
			sv = byIdx[i]
		}
		if sv == nil {
			sv = p.acquire(keyOf(nets[i]))
		}
		solvers[i] = sv
		sol, err := run(sv, i)
		if err != nil {
			return fmt.Errorf("core: warm batch solve %d: %w", i, err)
		}
		sols[i] = sol
		return nil
	})
	// Solvers re-enter the pool only after every worker finished: no
	// state is reused twice within a batch, so no Solution above is
	// rebuilt under a caller mid-batch. The completed batch becomes the
	// next positional set; if a concurrent batch already installed one,
	// these solvers retire to the shape stripes instead.
	for i := range solvers {
		if solvers[i] == nil {
			// The error fan-out skipped this index: backfill from the
			// claimed positional set so no solver leaks.
			if byIdx != nil {
				solvers[i] = byIdx[i]
			}
		}
	}
	p.mu.Lock()
	if p.byIdx[obj] == nil {
		p.byIdx[obj] = solvers
		p.mu.Unlock()
	} else {
		p.mu.Unlock()
		for i, sv := range solvers {
			if sv != nil {
				p.release(keyOf(nets[i]), sv)
			}
		}
	}
	return sols, err
}

// SolveSession solves the quality maximization (Eq. 10) on the warm
// solver dedicated to the session key, creating one (seeded from the
// shape stripes when a same-shaped solver is pooled) on first use. A
// session re-solved under drift keeps its column tables, CG pool, and
// LP basis across calls no matter how the surrounding fleet reorders,
// grows, or shrinks — the keyed counterpart of SolveMany's positional
// affinity.
//
// Calls on the same key serialize; distinct keys solve concurrently.
// The returned Solution is valid until the session's next solve (it
// shares storage with the session's warm state, exactly like
// Solver.Resolve).
func (p *WarmPool) SolveSession(key string, n *Network) (*Solution, error) {
	return p.solveSession(key, keyOf(n), func(sv *Solver) (*Solution, error) {
		return sv.Resolve(n)
	})
}

// SolveSessionMinCost is SolveSession for the §VI-A cost minimization
// under a quality floor (Solver.ResolveMinCost).
func (p *WarmPool) SolveSessionMinCost(key string, n *Network, minQuality float64) (*Solution, error) {
	return p.solveSession(key, keyOf(n), func(sv *Solver) (*Solution, error) {
		return sv.ResolveMinCost(n, minQuality)
	})
}

// SolveSessionRandom is SolveSession for the §VI-B random-delay model
// with the given timeout table (Solver.ResolveQualityRandom).
func (p *WarmPool) SolveSessionRandom(key string, n *Network, to *Timeouts) (*Solution, error) {
	return p.solveSession(key, keyOf(n), func(sv *Solver) (*Solution, error) {
		return sv.ResolveQualityRandom(n, to)
	})
}

func (p *WarmPool) solveSession(key string, shape warmKey, run func(sv *Solver) (*Solution, error)) (*Solution, error) {
	p.smu.Lock()
	if p.sessions == nil {
		p.sessions = make(map[string]*sessionSlot)
	}
	slot := p.sessions[key]
	if slot == nil {
		slot = &sessionSlot{}
		p.sessions[key] = slot
	}
	p.smu.Unlock()

	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.dropped {
		// DropSession detached this slot while we waited for its mutex
		// and already retired its solver. Solve on a throwaway solver
		// (acquired warm when the stripes have one) that is deliberately
		// NOT released: releasing it would let a concurrent acquire
		// rebuild the storage the returned Solution still references.
		return run(p.acquire(shape))
	}
	if slot.sv == nil {
		slot.sv = p.acquire(shape)
	}
	slot.shape = shape
	return run(slot.sv)
}

// DropSession removes the session key and retires its warm solver to
// the shape-keyed stripes, where a future same-shaped session (keyed or
// positional) can pick the structural state back up. Dropping a key
// that was never solved is a no-op. Any Solution the dropped session
// returned remains readable but stops being protected from storage
// reuse — extract what you need before dropping.
func (p *WarmPool) DropSession(key string) {
	p.smu.Lock()
	slot := p.sessions[key]
	delete(p.sessions, key)
	p.smu.Unlock()
	if slot == nil {
		return
	}
	slot.mu.Lock()
	slot.dropped = true
	sv, shape := slot.sv, slot.shape
	slot.sv = nil
	slot.mu.Unlock()
	if sv != nil {
		p.release(shape, sv)
	}
}

// QuarantineSession discards the session's warm solver after a solver
// panic: the poisoned tableau is dropped on the floor — never retired
// to the shape-keyed stripes, where another session could inherit it —
// and replaced with a fresh cold solver, so the session's next solve
// re-primes from scratch and later solves warm up again on clean state.
// Quarantining an unknown or dropped key is a no-op. Callers must not
// hold the session's solve in progress (the panic has already unwound
// it).
func (p *WarmPool) QuarantineSession(key string) {
	p.smu.Lock()
	slot := p.sessions[key]
	p.smu.Unlock()
	if slot == nil {
		return
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.dropped {
		return
	}
	slot.sv = NewSolver()
}

// Sessions returns the number of live session keys.
func (p *WarmPool) Sessions() int {
	p.smu.Lock()
	defer p.smu.Unlock()
	return len(p.sessions)
}

package core

import (
	"fmt"
	"math"
	"sync"

	"dmc/internal/conc"
)

// warmPoolStripes is the lock-striping width of a WarmPool: shape keys
// hash onto independent mutexes so a 64-network fleet storm does not
// serialize its check-outs on one lock.
const warmPoolStripes = 16

// warmKey identifies the network shape a pooled warm solver was primed
// on. A solver whose last Resolve saw the same shape re-solves warm; a
// mismatched one transparently re-primes cold (Resolve's own guard), so
// the key is a hit-rate optimization, never a correctness requirement.
type warmKey struct {
	nPaths  int
	trans   int
	hasCost bool
}

func keyOf(n *Network) warmKey {
	return warmKey{
		nPaths:  len(n.Paths),
		trans:   n.transmissions(),
		hasCost: !math.IsInf(n.CostBound, 1),
	}
}

func (k warmKey) stripe() int {
	h := uint64(k.nPaths)*0x9e3779b97f4a7c15 + uint64(k.trans)*0x85ebca6b
	if k.hasCost {
		h += 0xc2b2ae35
	}
	return int((h >> 32) % warmPoolStripes)
}

type warmStripe struct {
	mu sync.Mutex
	m  map[warmKey][]*Solver
}

// WarmPool shares persistent incremental re-solve state across
// SolveMany workers: a striped, shape-keyed pool of warm Solvers. A
// fleet of drifting networks re-solved batch after batch (the §VIII-A
// estimator storm at fleet scale) draws, per network, a solver whose
// retained column tables, CG pools, and LP bases match the network —
// so every worker re-solves warm instead of cold.
//
// Checkout is positional first: when a batch has the same size as the
// pool's previous batch, network i gets the solver that solved index i
// last time — the fleet idiom keeps each drifting network at a stable
// index, and a warm state is only genuinely warm for the network whose
// drift trajectory primed it. Solvers that cannot be matched by
// position (first batch, changed batch size, a concurrent batch
// already claimed the positional set) fall back to the shape-keyed
// stripes, where any same-shaped warm solver still saves the structural
// work; a full mismatch just re-primes cold inside Resolve.
//
// Within one batch each pooled solver serves at most one network
// (checked-out solvers return to the pool only after the whole batch
// completes), so the returned Solutions are never clobbered mid-batch.
// They DO share storage with the pooled warm states: a later SolveMany
// on the same pool rebuilds that storage in place, invalidating them —
// the batch analogue of Solver.Resolve's contract. Extract what you
// need from one batch's Solutions before issuing the next, or use the
// package-level SolveMany, which never reuses result storage.
//
// A WarmPool is safe for concurrent use; concurrent batches simply
// check out disjoint solvers.
type WarmPool struct {
	mu    sync.Mutex
	byIdx []*Solver // previous batch's solvers, by network index

	stripes [warmPoolStripes]warmStripe
}

// NewWarmPool returns an empty warm solver pool.
func NewWarmPool() *WarmPool {
	p := &WarmPool{}
	for i := range p.stripes {
		p.stripes[i].m = make(map[warmKey][]*Solver)
	}
	return p
}

// acquire pops a warm solver primed on the key's shape, or returns a
// fresh one when none is pooled.
func (p *WarmPool) acquire(k warmKey) *Solver {
	st := &p.stripes[k.stripe()]
	st.mu.Lock()
	defer st.mu.Unlock()
	stack := st.m[k]
	if len(stack) == 0 {
		return NewSolver()
	}
	s := stack[len(stack)-1]
	st.m[k] = stack[:len(stack)-1]
	return s
}

// release returns a solver to its shape's stack.
func (p *WarmPool) release(k warmKey, s *Solver) {
	st := &p.stripes[k.stripe()]
	st.mu.Lock()
	st.m[k] = append(st.m[k], s)
	st.mu.Unlock()
}

// SolveMany solves the quality maximization (Eq. 10) for every network
// across min(GOMAXPROCS, len(nets)) workers, each solve running on a
// pooled warm solver's incremental path (Solver.Resolve). Results are
// returned in input order; on error the first failure is returned
// together with the partial results, and entries that did not solve are
// nil. See the WarmPool type comment for the result-invalidation
// contract.
func (p *WarmPool) SolveMany(nets []*Network) ([]*Solution, error) {
	// Claim the positional solver set when the batch shape allows it.
	p.mu.Lock()
	var byIdx []*Solver
	if len(p.byIdx) == len(nets) {
		byIdx, p.byIdx = p.byIdx, nil
	}
	p.mu.Unlock()

	sols := make([]*Solution, len(nets))
	solvers := make([]*Solver, len(nets))
	err := conc.ForEach(len(nets), func(i int) error {
		var sv *Solver
		if byIdx != nil {
			sv = byIdx[i]
		}
		if sv == nil {
			sv = p.acquire(keyOf(nets[i]))
		}
		solvers[i] = sv
		sol, err := sv.Resolve(nets[i])
		if err != nil {
			return fmt.Errorf("core: warm batch solve %d: %w", i, err)
		}
		sols[i] = sol
		return nil
	})
	// Solvers re-enter the pool only after every worker finished: no
	// state is reused twice within a batch, so no Solution above is
	// rebuilt under a caller mid-batch. The completed batch becomes the
	// next positional set; if a concurrent batch already installed one,
	// these solvers retire to the shape stripes instead.
	for i := range solvers {
		if solvers[i] == nil {
			// The error fan-out skipped this index: backfill from the
			// claimed positional set so no solver leaks.
			if byIdx != nil {
				solvers[i] = byIdx[i]
			}
		}
	}
	p.mu.Lock()
	if p.byIdx == nil {
		p.byIdx = solvers
		p.mu.Unlock()
	} else {
		p.mu.Unlock()
		for i, sv := range solvers {
			if sv != nil {
				p.release(keyOf(nets[i]), sv)
			}
		}
	}
	return sols, err
}

package core

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// pruneSolve solves with the pruner forced on for every size.
func pruneSolve(n *Network) (*Solution, error) {
	s := NewSolver()
	s.PruneThreshold = 1
	s.DenseThreshold = DenseLimit
	return s.SolveQuality(n)
}

// TestPrunedMatchesDense: dominance pruning must never change the
// optimum, on random networks and on adversarial path sets designed to
// maximize dominance ties (identical paths, zero-loss, zero-cost,
// lifetime shorter than any delay chain).
func TestPrunedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9e, 0x51))

	adversarial := []*Network{
		// Identical paths: every permutation of a combination is an
		// exact duplicate column.
		func() *Network {
			p := Path{Bandwidth: 10 * Mbps, Delay: 100 * time.Millisecond, Loss: 0.1, Cost: 1}
			return NewNetwork(20*Mbps, time.Second, p, p, p)
		}(),
		// Zero-loss paths: survival hits zero after one attempt, so all
		// suffixes collapse.
		func() *Network {
			return NewNetwork(5*Mbps, time.Second,
				Path{Bandwidth: 10 * Mbps, Delay: 50 * time.Millisecond, Loss: 0},
				Path{Bandwidth: 10 * Mbps, Delay: 80 * time.Millisecond, Loss: 0},
			)
		}(),
		// Lifetime shorter than any retransmission chain: only
		// single-attempt columns can deliver.
		func() *Network {
			n := NewNetwork(5*Mbps, 120*time.Millisecond,
				Path{Bandwidth: 10 * Mbps, Delay: 100 * time.Millisecond, Loss: 0.3},
				Path{Bandwidth: 10 * Mbps, Delay: 110 * time.Millisecond, Loss: 0.2},
			)
			n.Transmissions = 3
			return n
		}(),
		// Free path dominating an expensive slow one outright.
		func() *Network {
			n := NewNetwork(5*Mbps, time.Second,
				Path{Bandwidth: 100 * Mbps, Delay: 50 * time.Millisecond, Loss: 0.01, Cost: 0},
				Path{Bandwidth: 100 * Mbps, Delay: 500 * time.Millisecond, Loss: 0.2, Cost: 5},
			)
			n.CostBound = 1e6
			return n
		}(),
	}
	for i, n := range adversarial {
		checkPrunedMatchesDense(t, n, i, "adversarial")
	}
	for trial := 0; trial < 100; trial++ {
		n := diffRandomNetwork(rng, 2+rng.IntN(5), 1+rng.IntN(3))
		checkPrunedMatchesDense(t, n, trial, "random")
	}
}

func checkPrunedMatchesDense(t *testing.T, n *Network, id int, kind string) {
	t.Helper()
	dsol, err := forceDense().SolveQuality(n)
	if err != nil {
		t.Fatalf("%s %d: dense: %v", kind, id, err)
	}
	psol, err := pruneSolve(n)
	if err != nil {
		t.Fatalf("%s %d: pruned: %v", kind, id, err)
	}
	if diff := math.Abs(dsol.Quality - psol.Quality); diff > 1e-9 {
		t.Errorf("%s %d: pruned quality %v vs dense %v (diff %v, kept %d of %d)",
			kind, id, psol.Quality, dsol.Quality, diff, psol.Stats.Columns, psol.Stats.PrunedFrom)
	}
	// Pruning must also preserve the min-cost optimum (same dominance
	// criterion, different objective).
	target := dsol.Quality * 0.9
	dcost, derr := forceDense().SolveMinCost(n, target)
	pcost, perr := func() (*Solution, error) {
		s := NewSolver()
		s.PruneThreshold = 1
		return s.SolveMinCost(n, target)
	}()
	if (derr == nil) != (perr == nil) {
		t.Fatalf("%s %d: min-cost feasibility disagrees: dense %v, pruned %v", kind, id, derr, perr)
	}
	if derr == nil {
		dc, pc := dcost.Cost(), pcost.Cost()
		if math.Abs(dc-pc) > 1e-6*(1+math.Abs(dc)) {
			t.Errorf("%s %d: pruned min-cost %v vs dense %v", kind, id, pc, dc)
		}
	}
}

// TestSparseSolutionRiskReport: RiskReport (and the risk-adjusted solve
// built on it) must work on pruned and column-generated solutions,
// whose column tables are a subset of the dense space — regression test
// for an index-out-of-range panic when it sized buffers by the dense
// combination count.
func TestSparseSolutionRiskReport(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	n := diffRandomNetwork(rng, 7, 4) // 8^4 = 4096 combos: auto-dispatches to pruned dense
	for name, solver := range map[string]*Solver{
		"pruned": func() *Solver { s := NewSolver(); s.PruneThreshold = 1; return s }(),
		"cg":     forceCG(),
		"auto":   NewSolver(),
	} {
		sol, err := solver.SolveQuality(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Stats.Dispatch == DispatchDense {
			t.Fatalf("%s: expected a sparse dispatch, got dense", name)
		}
		rep, err := sol.RiskReport(1024)
		if err != nil {
			t.Fatalf("%s: RiskReport: %v", name, err)
		}
		if len(rep.Bandwidth) != len(n.Paths) {
			t.Errorf("%s: %d bandwidth entries, want %d", name, len(rep.Bandwidth), len(n.Paths))
		}
		// Fraction must agree with the active-combination listing on
		// sparse solutions (packed-key lookup path).
		for _, cs := range sol.ActiveCombos(1e-9) {
			if f := sol.Fraction(cs.Combo); f != cs.Fraction {
				t.Errorf("%s: Fraction(%v) = %v, want %v", name, cs.Combo, f, cs.Fraction)
			}
		}
	}
}

// TestPrunerDropsStructuralColumns: non-canonical paddings and
// late-attempt columns must actually be pruned (the pruner does
// something, not just pass columns through).
func TestPrunerDropsStructuralColumns(t *testing.T) {
	n := NewNetwork(5*Mbps, 300*time.Millisecond,
		Path{Bandwidth: 10 * Mbps, Delay: 100 * time.Millisecond, Loss: 0.2},
		Path{Bandwidth: 10 * Mbps, Delay: 250 * time.Millisecond, Loss: 0.1},
	)
	n.Transmissions = 3
	m, err := newModel(n)
	if err != nil {
		t.Fatal(err)
	}
	cols := m.computeColumns(make([]int, m.m))
	pruned, kept := m.pruneColumns(cols)
	if len(kept) >= m.nVars {
		t.Fatalf("pruner kept all %d columns", m.nVars)
	}
	if pruned.len() != len(kept) {
		t.Fatalf("pruned table %d columns, kept list %d", pruned.len(), len(kept))
	}
	for _, l := range kept {
		if !m.canonicalInTime(cols.combos[l]) {
			t.Errorf("kept non-canonical combo %v", cols.combos[l])
		}
	}
	// (1, 0, 2) is a non-canonical padding of (1, 0, 0): must be gone.
	bad := m.index(Combo{1, 0, 2})
	for _, l := range kept {
		if l == bad {
			t.Errorf("non-canonical combo %v survived", cols.combos[bad])
		}
	}
}

// FuzzPruner feeds adversarial path sets to the pruner and checks the
// invariant that matters: pruning never changes the quality optimum.
func FuzzPruner(f *testing.F) {
	// Seeds: equal paths, dominance chains, boundary losses, tiny and
	// huge lifetimes, zero costs.
	seed := func(vals ...uint64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], v)
		}
		return b
	}
	f.Add(seed(2, 100, 100, 0, 0, 100, 100, 0, 0))
	f.Add(seed(3, 50, 10, 999, 3, 50, 10, 999, 3, 50, 10, 999, 3))
	f.Add(seed(1, 1, 1, 0, 0))
	f.Add(seed(4, 1000, 500, 1000, 0, 10, 1, 0, 5, 200, 300, 500, 1, 400, 50, 250, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		u64 := func(i int) uint64 {
			if 8*i+8 > len(data) {
				return 0
			}
			return binary.LittleEndian.Uint64(data[8*i:])
		}
		nPaths := int(u64(0)%5) + 1
		ps := make([]Path, nPaths)
		for i := range ps {
			off := 1 + i*4
			ps[i] = Path{
				Bandwidth: float64(u64(off)%1000+1) * Mbps,
				Delay:     time.Duration(u64(off+1)%2000) * time.Millisecond,
				Loss:      float64(u64(off+2)%1001) / 1000,
				Cost:      float64(u64(off+3) % 100),
			}
		}
		n := NewNetwork(float64(u64(nPaths*4+1)%1000+1)*Mbps, time.Duration(u64(nPaths*4+2)%1500+1)*time.Millisecond, ps...)
		n.Transmissions = int(u64(nPaths*4+3)%3) + 1
		n.CostBound = float64(u64(nPaths*4+4) % 1e6)
		if err := n.Validate(); err != nil {
			return
		}
		dsol, err := forceDense().SolveQuality(n)
		if err != nil {
			t.Skip() // size guard etc.
		}
		psol, err := pruneSolve(n)
		if err != nil {
			t.Fatalf("pruned solve failed where dense succeeded: %v", err)
		}
		if diff := math.Abs(dsol.Quality - psol.Quality); diff > 1e-7 {
			t.Fatalf("pruning changed the optimum: dense %v vs pruned %v (network %+v)",
				dsol.Quality, psol.Quality, n)
		}
	})
}

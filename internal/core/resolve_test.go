package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// driftNetwork returns a copy of n with every estimated characteristic
// (λ, µ, per-path loss/delay/bandwidth/cost) perturbed by up to ±maxRel
// relative, staying valid. This models the §VIII-A estimator drift that
// triggers adaptive re-solves.
func driftNetwork(rng *rand.Rand, n *Network, maxRel float64) *Network {
	rel := func() float64 { return 1 + (rng.Float64()*2-1)*maxRel }
	cp := *n
	cp.Paths = append([]Path(nil), n.Paths...)
	cp.Rate *= rel()
	if cp.CostBound > 0 && !math.IsInf(cp.CostBound, 1) {
		cp.CostBound *= rel()
	}
	for i := range cp.Paths {
		p := &cp.Paths[i]
		p.Bandwidth *= rel()
		p.Delay = time.Duration(float64(p.Delay) * rel())
		p.Loss *= rel()
		if p.Loss > 1 {
			p.Loss = 1
		}
		p.Cost *= rel()
	}
	return &cp
}

// resolveTrajectory replays one drift trajectory through a warm solver
// and checks every step against a cold solve. Returns how many steps
// warm-started the LP (Phase I skipped) and how many fell back.
func resolveTrajectory(t *testing.T, rng *rand.Rand, warm *Solver, base *Network, steps int, maxRel float64, wantDispatch Dispatch) (skipped, fellBack int) {
	t.Helper()
	cold := NewSolver()
	cold.DenseThreshold = warm.DenseThreshold
	cold.PruneThreshold = warm.PruneThreshold

	first, err := warm.Resolve(base)
	if err != nil {
		t.Fatalf("prime resolve: %v", err)
	}
	if first.Stats.Warm {
		t.Fatal("first resolve reported warm")
	}
	if first.Stats.Dispatch != wantDispatch {
		t.Fatalf("prime dispatch %v, want %v", first.Stats.Dispatch, wantDispatch)
	}

	net := base
	for step := 0; step < steps; step++ {
		net = driftNetwork(rng, net, maxRel)
		wsol, err := warm.Resolve(net)
		if err != nil {
			t.Fatalf("step %d: warm resolve: %v", step, err)
		}
		csol, err := cold.SolveQuality(net)
		if err != nil {
			t.Fatalf("step %d: cold solve: %v", step, err)
		}
		if !wsol.Stats.Warm {
			t.Fatalf("step %d: resolve did not use warm state", step)
		}
		if gap := abs64(wsol.Quality - csol.Quality); gap > 1e-6 {
			t.Fatalf("step %d: warm quality %.12f vs cold %.12f (gap %.3e, dispatch %v)",
				step, wsol.Quality, csol.Quality, gap, wsol.Stats.Dispatch)
		}
		if wsol.Stats.PhaseISkipped {
			skipped++
		} else {
			fellBack++
		}
	}
	return skipped, fellBack
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestResolveDifferentialDense replays drift trajectories through the
// dense dispatch: warm re-solves must match cold solves to 1e-6.
func TestResolveDifferentialDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x0e50, 1))
	skipped := 0
	for traj := 0; traj < 40; traj++ {
		warm := NewSolver()
		base := diffRandomNetwork(rng, 2+rng.IntN(3), 2)
		s, _ := resolveTrajectory(t, rng, warm, base, 6, 0.08, DispatchDense)
		skipped += s
	}
	if skipped == 0 {
		t.Fatal("no dense re-solve ever skipped Phase I; the warm basis path is dead")
	}
}

// TestResolveDifferentialPruned forces the dominance-pruned dispatch
// (tiny thresholds) and replays drift trajectories through it, covering
// the basis remap across changing pruned column subsets.
func TestResolveDifferentialPruned(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x0e50, 2))
	skipped := 0
	for traj := 0; traj < 40; traj++ {
		warm := NewSolver()
		warm.PruneThreshold = 4 // prune everything bigger than 4 combos
		base := diffRandomNetwork(rng, 3+rng.IntN(3), 2+rng.IntN(2))
		s, _ := resolveTrajectory(t, rng, warm, base, 6, 0.08, DispatchPruned)
		skipped += s
	}
	if skipped == 0 {
		t.Fatal("no pruned re-solve ever skipped Phase I; the basis remap path is dead")
	}
}

// TestResolveDifferentialCG forces column generation and replays drift
// trajectories through the persistent pool + warm basis path.
func TestResolveDifferentialCG(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x0e50, 3))
	skipped, hits := 0, 0
	for traj := 0; traj < 30; traj++ {
		warm := NewSolver()
		warm.DenseThreshold = -1 // force CG at any size
		base := diffRandomNetwork(rng, 3+rng.IntN(4), 2+rng.IntN(2))
		cold := NewSolver()
		cold.DenseThreshold = -1

		first, err := warm.Resolve(base)
		if err != nil {
			t.Fatalf("prime: %v", err)
		}
		if first.Stats.Dispatch != DispatchCG || first.Stats.PoolAdded != first.Stats.Columns {
			t.Fatalf("prime stats %+v", first.Stats)
		}
		net := base
		for step := 0; step < 6; step++ {
			net = driftNetwork(rng, net, 0.08)
			wsol, err := warm.Resolve(net)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			csol, err := cold.SolveQuality(net)
			if err != nil {
				t.Fatalf("step %d cold: %v", step, err)
			}
			if gap := abs64(wsol.Quality - csol.Quality); gap > 1e-6 {
				t.Fatalf("step %d: warm %.12f vs cold %.12f (gap %.3e)", step, wsol.Quality, csol.Quality, gap)
			}
			if !wsol.Stats.Warm || wsol.Stats.Dispatch != DispatchCG {
				t.Fatalf("step %d: stats %+v", step, wsol.Stats)
			}
			if wsol.Stats.PoolHits == 0 {
				t.Fatalf("step %d: warm CG solve reported no pool hits", step)
			}
			hits += wsol.Stats.PoolHits
			if wsol.Stats.PhaseISkipped {
				skipped++
			}
		}
	}
	if skipped == 0 {
		t.Fatal("no CG re-solve ever warm-started its first master")
	}
	if hits == 0 {
		t.Fatal("pool never hit")
	}
}

// TestResolveCGScale runs one realistic CG-scale trajectory (the
// ROADMAP's 40 paths × 4 transmissions target, 2.8M combinations) and
// checks agreement plus substantial pool reuse.
func TestResolveCGScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CG-scale trajectory is slow under -short")
	}
	rng := rand.New(rand.NewPCG(0xcafe, 40))
	base := diffRandomNetwork(rng, 40, 4)
	warm, cold := NewSolver(), NewSolver()
	if _, err := warm.Resolve(base); err != nil {
		t.Fatal(err)
	}
	net := base
	for step := 0; step < 3; step++ {
		net = driftNetwork(rng, net, 0.05)
		wsol, err := warm.Resolve(net)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		csol, err := cold.SolveQuality(net)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if gap := abs64(wsol.Quality - csol.Quality); gap > 1e-6 {
			t.Fatalf("step %d: warm %.12f vs cold %.12f", step, wsol.Quality, csol.Quality)
		}
		if wsol.Stats.PoolHits < wsol.Stats.Columns/2 {
			t.Fatalf("step %d: pool hits %d of %d columns — pool retention broken",
				step, wsol.Stats.PoolHits, wsol.Stats.Columns)
		}
	}
}

// TestResolveBasisRepairFallback drifts violently enough that the prior
// basis cannot stay primal feasible, exercising the automatic cold
// fallback inside the warm path: the solve must still succeed and agree
// with a cold solve, just without the Phase-I skip.
func TestResolveBasisRepairFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xfa11, 7))
	fellBack := 0
	for traj := 0; traj < 25 && fellBack == 0; traj++ {
		warm := NewSolver()
		base := diffRandomNetwork(rng, 3, 2)
		if _, err := warm.Resolve(base); err != nil {
			t.Fatal(err)
		}
		// Violent drift: collapse bandwidths to 3% and spike losses —
		// the previously binding rows change completely.
		cp := *base
		cp.Paths = append([]Path(nil), base.Paths...)
		cp.Rate *= 4
		for i := range cp.Paths {
			cp.Paths[i].Bandwidth *= 0.03
			cp.Paths[i].Loss = 0.9 * rng.Float64()
		}
		wsol, err := warm.Resolve(&cp)
		if err != nil {
			t.Fatalf("traj %d: warm resolve after violent drift: %v", traj, err)
		}
		csol, err := SolveQuality(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if gap := abs64(wsol.Quality - csol.Quality); gap > 1e-6 {
			t.Fatalf("traj %d: warm %.12f vs cold %.12f after fallback", traj, wsol.Quality, csol.Quality)
		}
		if wsol.Stats.Warm && !wsol.Stats.PhaseISkipped {
			fellBack++
		}
	}
	if fellBack == 0 {
		t.Fatal("violent drift never forced a basis fallback; the repair path is untested")
	}
}

// TestResolveShapeChangeGoesCold verifies that changing the network
// shape (path count, transmissions, cost-boundedness) between Resolve
// calls transparently re-primes instead of reusing stale state.
func TestResolveShapeChangeGoesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x5a5e, 1))
	warm := NewSolver()
	a := diffRandomNetwork(rng, 3, 2)
	if _, err := warm.Resolve(a); err != nil {
		t.Fatal(err)
	}

	b := diffRandomNetwork(rng, 4, 2) // path count changed
	sol, err := warm.Resolve(b)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("shape change (paths) reused warm state")
	}

	c := diffRandomNetwork(rng, 4, 3) // transmissions changed
	if sol, err = warm.Resolve(c); err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("shape change (transmissions) reused warm state")
	}

	d := *c // cost bound flips finite → infinite: row structure changes
	d.CostBound = inf()
	if sol, err = warm.Resolve(&d); err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Warm {
		t.Fatal("cost-boundedness change reused warm state")
	}

	// Same shape again: warm.
	e := driftNetwork(rng, &d, 0.05)
	if sol, err = warm.Resolve(e); err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Warm {
		t.Fatal("same-shape re-solve did not reuse warm state")
	}
	ref, err := SolveQuality(e)
	if err != nil {
		t.Fatal(err)
	}
	if gap := abs64(sol.Quality - ref.Quality); gap > 1e-6 {
		t.Fatalf("warm %.12f vs cold %.12f after shape churn", sol.Quality, ref.Quality)
	}
}

func inf() float64 { return math.Inf(1) }

// TestResolveConcurrentSolvers runs independent warm solvers on
// concurrent drift trajectories — the race detector must stay quiet
// (solver state is strictly per-instance; nothing warm is shared).
func TestResolveConcurrentSolvers(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			warm := NewSolver()
			if seed%2 == 0 {
				warm.DenseThreshold = -1 // half the workers on the CG path
			}
			base := diffRandomNetwork(rng, 3, 2)
			net := base
			for step := 0; step < 8; step++ {
				sol, err := warm.Resolve(net)
				if err != nil {
					t.Errorf("worker %d step %d: %v", seed, step, err)
					return
				}
				if sol.Quality < 0 || sol.Quality > 1 {
					t.Errorf("worker %d step %d: quality %v", seed, step, sol.Quality)
					return
				}
				net = driftNetwork(rng, net, 0.08)
			}
		}(uint64(w))
	}
	wg.Wait()
}

package core

import (
	"errors"
	"fmt"
	"math"
)

// RiskReport holds the §IX-C exceedance probabilities of a solution: the
// model constrains expected usage, but realized per-second usage
// fluctuates with per-packet combination draws and losses, so an
// expectation-tight solution exceeds its caps roughly half the time.
type RiskReport struct {
	// Bandwidth[i] is P(realized bit rate on path i > bᵢ) over one
	// second of traffic.
	Bandwidth []float64
	// Cost is P(realized cost per second > µ); zero when the budget is
	// unlimited.
	Cost float64
	// PacketsPerSecond is the workload the probabilities assume.
	PacketsPerSecond float64
}

// Max returns the largest exceedance probability in the report.
func (r *RiskReport) Max() float64 {
	max := r.Cost
	for _, p := range r.Bandwidth {
		if p > max {
			max = p
		}
	}
	return max
}

// attemptProbs returns, for combination c, the probability that each
// transmission attempt occurs (attempt k fires iff every earlier attempt
// was lost; nothing fires after a blackhole).
func (m *model) attemptProbs(c Combo) []float64 {
	probs := make([]float64, len(c))
	surv := 1.0
	for k, i := range c {
		probs[k] = surv
		if m.isBlackhole(i) {
			surv = 0
		} else {
			surv *= m.paths[i].Loss
		}
	}
	return probs
}

// pathUsageMoments returns the per-packet mean and second moment of the
// number of transmissions combination c places on model path i. The
// attempt indicators are nested (a later attempt implies all earlier
// ones), so E[X_r·X_s] = P(attempt max(r,s)).
func (m *model) pathUsageMoments(c Combo, probs []float64, path int) (mean, second float64) {
	var positions []int
	for k, i := range c {
		if i == path {
			positions = append(positions, k)
		}
	}
	for _, r := range positions {
		mean += probs[r]
		second += probs[r]
	}
	for a := 0; a < len(positions); a++ {
		for b := a + 1; b < len(positions); b++ {
			second += 2 * probs[positions[b]]
		}
	}
	return mean, second
}

// costMoments returns the per-packet mean and second moment of the cost
// (per bit) combination c incurs.
func (m *model) costMoments(c Combo, probs []float64) (mean, second float64) {
	// cost = Σ_r c_r·X_r with nested indicators:
	// E[(Σ c_r X_r)²] = Σ c_r² q_r + 2 Σ_{r<s} c_r c_s q_s.
	for r, i := range c {
		cr := m.paths[i].Cost
		mean += cr * probs[r]
		second += cr * cr * probs[r]
		for s := r + 1; s < len(c); s++ {
			second += 2 * cr * m.paths[c[s]].Cost * probs[s]
		}
	}
	return mean, second
}

// RiskReport computes the exceedance probabilities of the solution for a
// workload of fixed-size packets (the paper's 1024-byte messages by
// default in the protocol layer). Per-packet combination choices are
// treated as independent draws from X — the weighted-random scheduling
// model; the deterministic Algorithm 1 selector has strictly lower
// variance, so these probabilities are conservative for it. Gaussian
// (CLT) approximation over λ/(8·packetBytes) packets per second.
func (s *Solution) RiskReport(packetBytes int) (*RiskReport, error) {
	if packetBytes <= 0 {
		return nil, fmt.Errorf("core: packet size %d must be positive", packetBytes)
	}
	m := s.m
	bitsPerPacket := float64(packetBytes) * 8
	pps := s.Network.Rate / bitsPerPacket
	if pps < 1 {
		return nil, fmt.Errorf("core: rate %v yields under one packet/s for %d-byte packets", s.Network.Rate, packetBytes)
	}

	// Size by the solution's own column tables, not m.nVars: pruned and
	// column-generated solutions carry a subset of the dense space (and
	// sparse models have no dense count at all).
	probs := make([][]float64, len(s.combos))
	for l := range s.combos {
		probs[l] = m.attemptProbs(s.combos[l])
	}

	rep := &RiskReport{
		Bandwidth:        make([]float64, len(s.Network.Paths)),
		PacketsPerSecond: pps,
	}
	for i := range s.Network.Paths {
		var mean, second float64
		for l, x := range s.X {
			if x <= 0 {
				continue
			}
			mu, m2 := m.pathUsageMoments(s.combos[l], probs[l], i+1)
			mean += x * mu
			second += x * m2
		}
		variance := second - mean*mean
		rep.Bandwidth[i] = gaussianExceedance(
			pps*mean*bitsPerPacket,
			pps*variance*bitsPerPacket*bitsPerPacket,
			s.Network.Paths[i].Bandwidth,
		)
	}
	if !math.IsInf(s.Network.CostBound, 1) {
		var mean, second float64
		for l, x := range s.X {
			if x <= 0 {
				continue
			}
			mu, m2 := m.costMoments(s.combos[l], probs[l])
			mean += x * mu
			second += x * m2
		}
		variance := second - mean*mean
		rep.Cost = gaussianExceedance(
			pps*mean*bitsPerPacket,
			pps*variance*bitsPerPacket*bitsPerPacket,
			s.Network.CostBound,
		)
	}
	return rep, nil
}

// gaussianExceedance returns P(N(mean, variance) > limit), with the
// degenerate zero-variance case resolved by comparison.
func gaussianExceedance(mean, variance, limit float64) float64 {
	if math.IsInf(limit, 1) {
		return 0
	}
	if variance <= 0 {
		if mean > limit {
			return 1
		}
		return 0
	}
	z := (limit - mean) / math.Sqrt(variance)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// RiskOptions tunes SolveQualityRiskAdjusted.
type RiskOptions struct {
	// PacketBytes sizes the packetized workload; zero means 1024 (the
	// paper's message size).
	PacketBytes int
	// Epsilon is the acceptable exceedance probability per constraint;
	// zero means 0.01.
	Epsilon float64
	// Shrink is the multiplicative cap reduction per round in (0, 1);
	// zero means 0.98.
	Shrink float64
	// MaxRounds bounds the adjust/re-solve loop; zero means 200.
	MaxRounds int
}

func (o RiskOptions) withDefaults() RiskOptions {
	if o.PacketBytes <= 0 {
		o.PacketBytes = 1024
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.Shrink <= 0 || o.Shrink >= 1 {
		o.Shrink = 0.98
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 200
	}
	return o
}

// ErrRiskUnattainable reports that no cap shrinkage achieved the
// requested exceedance bound within the round budget.
var ErrRiskUnattainable = errors.New("core: risk adjustment did not reach epsilon")

// SolveQualityRiskAdjusted implements §IX-C: "the system can adjust the
// bandwidth limit or cost limit and re-solve the linear program". It
// repeatedly shrinks the caps of violated constraints (the q vector of
// Eq. 17) and re-solves, until the realized-usage exceedance probability
// of every bandwidth row and the cost row is at most Epsilon under the
// packetized-traffic model of (*Solution).RiskReport.
func SolveQualityRiskAdjusted(n *Network, opts RiskOptions) (*Solution, *RiskReport, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()

	work := *n
	work.Paths = append([]Path(nil), n.Paths...)
	for round := 0; round < opts.MaxRounds; round++ {
		sol, err := SolveQuality(&work)
		if err != nil {
			return nil, nil, err
		}
		// Evaluate risk against the ORIGINAL caps: shrunken planning caps
		// are the mechanism, the true physical limits stay fixed.
		eval := *sol
		eval.Network = n
		rep, err := eval.RiskReport(opts.PacketBytes)
		if err != nil {
			return nil, nil, err
		}
		ok := true
		for i, p := range rep.Bandwidth {
			if p > opts.Epsilon {
				ok = false
				work.Paths[i].Bandwidth *= opts.Shrink
			}
		}
		if rep.Cost > opts.Epsilon {
			ok = false
			work.CostBound *= opts.Shrink
		}
		if ok {
			return sol, rep, nil
		}
	}
	return nil, nil, fmt.Errorf("core: after %d rounds: %w", opts.MaxRounds, ErrRiskUnattainable)
}

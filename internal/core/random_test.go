package core

import (
	"math"
	"testing"
	"time"

	"dmc/internal/dist"
)

// tableVNetwork is Experiment 2's scenario: Table V shifted-gamma delays,
// λ = 90 Mbps, δ = 750 ms.
func tableVNetwork() *Network {
	return NewNetwork(90*Mbps, 750*time.Millisecond,
		Path{Name: "path1", Bandwidth: 80 * Mbps, Loss: 0.2,
			RandDelay: dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}},
		Path{Name: "path2", Bandwidth: 20 * Mbps, Loss: 0,
			RandDelay: dist.ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}},
	)
}

// TestExperiment2Timeouts reproduces Eq. 35: t₁,₁ undefined, t₁,₂ ≈ 615 ms,
// t₂,₁ ≈ 252 ms, and t₂,₂ on the broad optimal plateau (the paper itself
// notes the optimum is not unique and picks 323 ms; any point of the
// plateau achieves the same product to ~1e-30).
func TestExperiment2Timeouts(t *testing.T) {
	n := tableVNetwork()
	to, err := OptimalTimeouts(n, TimeoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := to.Get(0, 0); ok {
		t.Error("t[1,1] should be undefined (750 ms lifetime admits no useful same-path retransmission)")
	}
	assertWindow := func(i, j int, lo, hi time.Duration) {
		t.Helper()
		v, ok := to.Get(i, j)
		if !ok {
			t.Errorf("t[%d,%d] undefined, want defined", i+1, j+1)
			return
		}
		if v < lo || v > hi {
			t.Errorf("t[%d,%d] = %v, want in [%v, %v]", i+1, j+1, v, lo, hi)
		}
	}
	// Paper values: 615, 252, 323 ms.
	assertWindow(0, 1, 605*time.Millisecond, 625*time.Millisecond)
	assertWindow(1, 0, 243*time.Millisecond, 262*time.Millisecond)
	assertWindow(1, 1, 250*time.Millisecond, 620*time.Millisecond) // plateau
	if to.String() == "" {
		t.Error("String empty")
	}
}

// TestExperiment2ModelQuality reproduces the §VII Experiment 2 result: the
// random-delay model predicts Q ≈ 93.3 % (the paper's simulation delivered
// 93,332 of 100,000 packets).
func TestExperiment2ModelQuality(t *testing.T) {
	n := tableVNetwork()
	to, err := OptimalTimeouts(n, TimeoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality < 0.930 || s.Quality > 0.9334 {
		t.Errorf("quality = %v, want ≈ 0.9333 (93.3%%)", s.Quality)
	}
	// The strategy must saturate path 2's 20 Mbps and respect path 1's cap.
	if r := s.SentRate(1); r > 20*Mbps*(1+1e-6) {
		t.Errorf("SentRate(path2) = %v exceeds 20 Mbps", r)
	}
	if r := s.SentRate(0); r > 80*Mbps*(1+1e-6) {
		t.Errorf("SentRate(path1) = %v exceeds 80 Mbps", r)
	}
}

// TestRandomMatchesDeterministicLimit: with near-degenerate delay spreads
// the random model converges to the deterministic one.
func TestRandomMatchesDeterministicLimit(t *testing.T) {
	// Tight gammas around 450/150 ms (σ ≈ 0.2/0.1 ms).
	rnd := NewNetwork(90*Mbps, 800*time.Millisecond,
		Path{Bandwidth: 80 * Mbps, Loss: 0.2,
			RandDelay: dist.ShiftedGamma{Loc: 449 * time.Millisecond, Shape: 100, Scale: 10 * time.Microsecond}},
		Path{Bandwidth: 20 * Mbps, Loss: 0,
			RandDelay: dist.ShiftedGamma{Loc: 149 * time.Millisecond, Shape: 100, Scale: 10 * time.Microsecond}},
	)
	to, err := OptimalTimeouts(rnd, TimeoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolveQualityRandom(rnd, to)
	if err != nil {
		t.Fatal(err)
	}
	det := solveQ(t, tableIIINetwork(90, 800*time.Millisecond))
	if math.Abs(s.Quality-det.Quality) > 0.002 {
		t.Errorf("random-limit quality %v vs deterministic %v", s.Quality, det.Quality)
	}
}

func TestSolveQualityRandomErrors(t *testing.T) {
	n := tableVNetwork()
	to, err := OptimalTimeouts(n, TimeoutOptions{GridStep: 20 * time.Millisecond, RefineLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	n3 := *n
	n3.Transmissions = 3
	if _, err := SolveQualityRandom(&n3, to); err != ErrRandomNeedsTwoTransmissions {
		t.Errorf("want ErrRandomNeedsTwoTransmissions, got %v", err)
	}
	if _, err := SolveQualityRandom(n, nil); err == nil {
		t.Error("nil timeouts accepted")
	}
	if _, err := SolveQualityRandom(n, NewTimeouts(5)); err == nil {
		t.Error("mis-sized timeouts accepted")
	}
	bad := *n
	bad.Rate = -1
	if _, err := SolveQualityRandom(&bad, to); err == nil {
		t.Error("invalid network accepted")
	}
}

// TestRandomBlackholeSemantics: traffic assigned to blackhole-first
// combinations delivers nothing and never consumes real bandwidth.
func TestRandomBlackholeSemantics(t *testing.T) {
	// Overloaded: 200 Mbps into 80+20; a large share must be dropped.
	n := tableVNetwork()
	n.Rate = 200 * Mbps
	to, err := OptimalTimeouts(n, TimeoutOptions{GridStep: 10 * time.Millisecond, RefineLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality > 0.55 {
		t.Errorf("quality %v too high for a 2:1 overload", s.Quality)
	}
	for i, p := range n.Paths {
		if s.SentRate(i) > p.Bandwidth*(1+1e-6) {
			t.Errorf("path %d oversubscribed: %v", i, s.SentRate(i))
		}
	}
}

// TestUndefinedTimeoutDominated: combinations with undefined timeouts are
// never preferred over their drop-after-first counterparts.
func TestUndefinedTimeoutDominated(t *testing.T) {
	// Lifetime so short that no retransmission can help on (1, ·).
	n := tableVNetwork()
	n.Lifetime = 460 * time.Millisecond
	to, err := OptimalTimeouts(n, TimeoutOptions{GridStep: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := to.Get(0, 0); ok {
		t.Error("t[1,1] should be undefined at δ=460ms")
	}
	if _, ok := to.Get(0, 1); ok {
		t.Error("t[1,2] should be undefined at δ=460ms (d1+dmin alone exceeds δ)")
	}
	s, err := SolveQualityRandom(n, to)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal strategy: path 2 saturated (2/9 of traffic, p≈1), the rest
	// on path 1 first-attempt-only (conservation caps it at 7/9):
	// Q = 7/9·0.8·P(d1 ≤ 460ms) + 2/9.
	pd1 := n.Paths[0].RandDelay.CDF(460 * time.Millisecond)
	want := 7.0/9*0.8*pd1 + 2.0/9
	if math.Abs(s.Quality-want) > 0.005 {
		t.Errorf("quality = %v, want ≈ %v", s.Quality, want)
	}
}

func TestDeterministicTimeoutsTable(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	to, err := DeterministicTimeouts(n, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := to.Get(0, 1); !ok || v != 700*time.Millisecond {
		t.Errorf("t[1,2] = %v, want 700ms", v)
	}
	if v, ok := to.Get(1, 0); !ok || v != 400*time.Millisecond {
		t.Errorf("t[2,1] = %v, want 400ms", v)
	}
	if _, ok := to.Get(5, 0); ok {
		t.Error("out-of-range Get should fail")
	}
	if _, err := DeterministicTimeouts(&Network{}, 0); err == nil {
		t.Error("invalid network accepted")
	}
	to.Set(0, 0, -1)
	if _, ok := to.Get(0, 0); ok {
		t.Error("Set(-1) should mark undefined")
	}
}

// TestOptimalTimeoutsDeterministicDelays: with point-mass delays the
// optimum must fall in [dᵢ+d_min, δ−dⱼ] whenever that window exists.
func TestOptimalTimeoutsDeterministicDelays(t *testing.T) {
	n := tableIIINetwork(90, 800*time.Millisecond)
	to, err := OptimalTimeouts(n, TimeoutOptions{GridStep: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// t₁,₂: ack returns at 600 ms; retransmission must leave by 650 ms.
	v, ok := to.Get(0, 1)
	if !ok || v < 600*time.Millisecond || v > 650*time.Millisecond {
		t.Errorf("t[1,2] = %v (ok=%v), want within [600ms, 650ms]", v, ok)
	}
	// t₁,₁: 450+150+450 = 1050 > 800 → undefined.
	if _, ok := to.Get(0, 0); ok {
		t.Error("t[1,1] should be undefined")
	}
}

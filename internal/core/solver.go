package core

import (
	"fmt"
	"math"
	"sync"

	"dmc/internal/lp"
)

// Dispatch thresholds for SolveQuality's automatic scaling. Combination
// counts up to DefaultPruneThreshold solve by plain dense enumeration
// (the pruner would cost more than it saves); counts up to
// DefaultDenseThreshold solve densely after dominance pruning; larger
// spaces — which dense enumeration could not even materialize past
// DenseLimit — go to column generation.
const (
	DefaultPruneThreshold = 2048
	DefaultDenseThreshold = 1 << 13
)

// Solver is a reusable solve context: it owns an lp.Solver (tableau,
// basis, and pivot workspaces) plus the combination-enumeration scratch,
// so repeated solves of same-shaped networks reuse all of the solver's
// working memory and allocate only the returned Solution. A Solver is
// NOT safe for concurrent use; use one per goroutine or the SolveMany
// batch API, which shards work across a pool of them.
type Solver struct {
	lps    lp.Solver
	digits []int

	// rs is the persistent incremental re-solve state behind Resolve;
	// SolveQuality and the other one-shot entry points never touch it.
	rs resolveState
	// asm is the LP-assembly arena the Resolve paths rewrite in place
	// (their returned Solutions are documented as invalidated by the
	// next Resolve; the one-shot entry points assemble fresh storage).
	asm asmScratch

	// DenseThreshold overrides the combination count above which
	// SolveQuality dispatches to column generation instead of dense
	// enumeration. Zero selects DefaultDenseThreshold; negative forces
	// column generation for every size; values above DenseLimit are
	// capped there (dense tables beyond it are never materialized).
	DenseThreshold int
	// PruneThreshold overrides the combination count above which dense
	// solves run the dominance pruner before assembling the LP. Zero
	// selects DefaultPruneThreshold; negative disables pruning.
	PruneThreshold int
}

// NewSolver returns a reusable Solver.
func NewSolver() *Solver { return &Solver{} }

// denseDispatchOK reports whether the network's combination space fits
// the dense-enumeration side of the dispatch threshold.
func (s *Solver) denseDispatchOK(n *Network) bool {
	th := s.DenseThreshold
	if th == 0 {
		th = DefaultDenseThreshold
	}
	if th < 0 {
		return false
	}
	if th > DenseLimit {
		th = DenseLimit
	}
	_, ok := combinationCount(len(n.Paths)+1, n.transmissions(), th)
	return ok
}

// pruneIfWorthwhile runs the dominance pruner when the combination
// count exceeds the prune threshold, returning the (possibly pruned)
// columns and a key index for the surviving subset (nil when nothing
// was pruned).
func (s *Solver) pruneIfWorthwhile(m *model, cols *columns) (*columns, map[uint64]int) {
	th := s.PruneThreshold
	if th == 0 {
		th = DefaultPruneThreshold
	}
	if th < 0 || m.nVars <= th {
		return cols, nil
	}
	pruned, kept := m.pruneColumns(cols)
	if len(kept) == m.nVars {
		return cols, nil
	}
	// Key by packKey — the same function Fraction looks columns up with —
	// rather than the dense index, so the two can never drift apart.
	index := make(map[uint64]int, len(kept))
	for pos := range kept {
		index[m.packKey(pruned.combos[pos])] = pos
	}
	return pruned, index
}

// solverPool backs the package-level SolveQuality/SolveMinCost/
// SolveQualityRandom wrappers and the SolveMany workers, so one-shot
// callers still reuse solver memory across calls.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

func (s *Solver) scratch(m int) []int {
	if cap(s.digits) < m {
		s.digits = make([]int, m)
	}
	return s.digits[:m]
}

// SolveQuality solves the deterministic-delay quality maximization
// (Eq. 10) and returns the optimal sending strategy. The problem is
// always feasible — the blackhole path absorbs any excess traffic — so a
// non-optimal status indicates an internal error.
//
// Dispatch scales with the combination count (n+1)^m: small spaces are
// enumerated densely, mid-size spaces are dominance-pruned first, and
// anything above the dense threshold — including counts that would
// overflow dense enumeration entirely — solves by column generation
// (SolveQualityCG). All three paths reach the same LP optimum.
func (s *Solver) SolveQuality(n *Network) (*Solution, error) {
	// Validation happens inside newModel/newSparseModel on both
	// branches; denseDispatchOK only reads sizes, safe on raw input.
	if !s.denseDispatchOK(n) {
		return s.SolveQualityCG(n)
	}
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	full := m.computeColumns(s.scratch(m.m))
	cols, index := s.pruneIfWorthwhile(m, full)
	prob := m.assembleProblem(lp.Maximize, cols.delivery, cols, nil, true)
	sol, err := s.lps.SolveWith(prob, lp.Options{AssumeValid: true})
	if err != nil {
		return nil, fmt.Errorf("core: solving quality LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: quality LP unexpectedly %v", sol.Status)
	}
	out := m.newSolutionIndexed(prob, cols, sol.X, sol.Objective, index)
	out.Stats = denseStats(m, cols, index)
	return out, nil
}

// denseStats summarizes a dense solve's dispatch for Solution.Stats.
func denseStats(m *model, cols *columns, index map[uint64]int) SolveStats {
	st := SolveStats{Dispatch: DispatchDense, Columns: cols.len()}
	if index != nil {
		st.Dispatch = DispatchPruned
		st.PrunedFrom = m.nVars
	}
	return st
}

// SolveMinCost solves the §VI-A variant: minimize the expected total cost
// per second (objective Eq. 21) subject to the bandwidth rows, the
// conservation row, and a minimum communication quality (Eq. 22's
// constraint, implemented as p·x ≥ minQuality; the paper writes the
// negated form — see DESIGN.md erratum #3).
//
// Returns ErrInfeasible wrapped in an error when the requested quality
// is unattainable on the given network.
//
// Dispatch scales with the combination count (n+1)^m exactly like
// SolveQuality: small spaces enumerate densely (dominance-pruned past
// the prune threshold), anything above the dense threshold — including
// counts that would overflow dense enumeration entirely — solves by
// column generation (SolveMinCostCG). All paths reach the same LP
// optimum; Solution.Stats reports which core ran.
func (s *Solver) SolveMinCost(n *Network, minQuality float64) (*Solution, error) {
	if math.IsNaN(minQuality) || minQuality < 0 || minQuality > 1 {
		return nil, fmt.Errorf("core: min quality %v outside [0,1]", minQuality)
	}
	if !s.denseDispatchOK(n) {
		return s.SolveMinCostCG(n, minQuality)
	}
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	full := m.computeColumns(s.scratch(m.m))
	cols, index := s.pruneIfWorthwhile(m, full)
	obj := make([]float64, cols.len())
	for l, c := range cols.costs {
		obj[l] = n.Rate * c // Eq. 21: (λ·cᵢ) + (λ·τᵢ·cⱼ), generalized
	}
	quality := lp.Constraint{Name: "quality", Coeffs: cols.delivery, Rel: lp.GE, RHS: minQuality}
	// No cost row: cost is the objective here, not a constraint (the
	// §VI-A formulation replaces the budget µ with the quality floor).
	prob := m.assembleProblem(lp.Minimize, obj, cols, &quality, false)

	sol, err := s.lps.SolveWith(prob, lp.Options{AssumeValid: true})
	if err != nil {
		return nil, fmt.Errorf("core: solving min-cost LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("core: quality %v unattainable on this network: %w", minQuality, ErrInfeasible)
	default:
		return nil, fmt.Errorf("core: min-cost LP unexpectedly %v", sol.Status)
	}

	out := m.newSolutionIndexed(prob, cols, sol.X, 0, index)
	out.Stats = denseStats(m, cols, index)
	// Recompute achieved quality from the solution (the LP objective here
	// is cost, not quality).
	var q float64
	for l, x := range sol.X {
		q += x * cols.delivery[l]
	}
	out.Quality = clamp01(q)
	return out, nil
}

// asmScratch is a reusable LP-assembly arena: the constraint headers,
// the flat coefficient backing, and the Problem value itself, rewritten
// in place by assembleProblemInto. Solve paths that document result
// invalidation (Solver.Resolve) route their assemblies through one of
// these so re-solves stop paying the dominant makeslice+clear cost of
// problem construction.
type asmScratch struct {
	prob    lp.Problem
	cons    []lp.Constraint
	backing []float64
}

// assembleProblem builds the common LP skeleton around the given
// objective: bandwidth rows (Eqs. 14–15/29), an optional extra row (the
// §VI-A quality floor), the cost row (Eq. 16/30) when costRow is set and
// the budget is finite, and the conservation row Bx′ = 1 (Eq. 18). All
// constraint coefficient rows are carved from one flat backing array;
// slices from cols are referenced, never copied, so the Problem shares
// storage with the Solution's own column tables.
func (m *model) assembleProblem(sense lp.Sense, obj []float64, cols *columns, extra *lp.Constraint, costRow bool) *lp.Problem {
	return m.assembleProblemInto(nil, sense, obj, cols, extra, costRow)
}

// assembleProblemInto is assembleProblem writing into a reusable
// scratch arena; a nil scratch allocates fresh storage (the one-shot
// solve paths, whose returned Solutions must stay immutable).
func (m *model) assembleProblemInto(sc *asmScratch, sense lp.Sense, obj []float64, cols *columns, extra *lp.Constraint, costRow bool) *lp.Problem {
	λ := m.net.Rate
	base, nVars := m.base, cols.len()
	hasCost := costRow && !math.IsInf(m.net.CostBound, 1)

	nRows := base - 1 + 1 // bandwidth rows + conservation
	if hasCost {
		nRows++
	}
	if extra != nil {
		nRows++
	}
	var cons []lp.Constraint
	var backing []float64
	if sc != nil {
		if cap(sc.cons) < nRows {
			sc.cons = make([]lp.Constraint, 0, nRows)
		}
		if cap(sc.backing) < nVars*nRows {
			sc.backing = make([]float64, nVars*nRows)
		}
		cons = sc.cons[:0]
		backing = sc.backing[:nVars*nRows]
	} else {
		cons = make([]lp.Constraint, 0, nRows)
		backing = make([]float64, nVars*nRows)
	}
	nextRow := func() []float64 {
		row := backing[:nVars:nVars]
		backing = backing[nVars:]
		return row
	}

	for i := 1; i < base; i++ {
		row := nextRow()
		for l := 0; l < nVars; l++ {
			row[l] = λ * cols.shares[l*base+i]
		}
		cons = append(cons, lp.Constraint{
			Name: fmt.Sprintf("bandwidth[%d]", i-1), Coeffs: row, Rel: lp.LE, RHS: m.paths[i].Bandwidth,
		})
	}
	if extra != nil {
		cons = append(cons, *extra)
	}
	if hasCost {
		row := nextRow()
		for l, c := range cols.costs {
			row[l] = λ * c
		}
		cons = append(cons, lp.Constraint{Name: "cost", Coeffs: row, Rel: lp.LE, RHS: m.net.CostBound})
	}
	ones := nextRow()
	for l := range ones {
		ones[l] = 1
	}
	cons = append(cons, lp.Constraint{Name: "conservation", Coeffs: ones, Rel: lp.EQ, RHS: 1})

	if sc != nil {
		sc.cons = cons
		sc.prob = lp.Problem{Sense: sense, Objective: obj, Constraints: cons}
		return &sc.prob
	}
	return &lp.Problem{Sense: sense, Objective: obj, Constraints: cons}
}

// newSolution assembles the public Solution from a solved x′ vector
// over the full dense combination space, sharing the column tables with
// the LP that produced it.
func (m *model) newSolution(prob *lp.Problem, cols *columns, x []float64, quality float64) *Solution {
	return m.newSolutionIndexed(prob, cols, x, quality, nil)
}

// newSolutionIndexed is newSolution for a column subset: colIndex maps
// a combination's packed key to its position in the column tables. A
// nil colIndex means the columns cover the dense space in enumeration
// order.
func (m *model) newSolutionIndexed(prob *lp.Problem, cols *columns, x []float64, quality float64, colIndex map[uint64]int) *Solution {
	return &Solution{
		Network:  m.net,
		X:        x,
		Quality:  clamp01(quality),
		m:        m,
		problem:  prob,
		combos:   cols.combos,
		delivery: cols.delivery,
		shares:   cols.shares,
		costs:    cols.costs,
		colIndex: colIndex,
	}
}

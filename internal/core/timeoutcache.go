package core

import (
	"fmt"
	"strings"
	"sync"

	"dmc/internal/dist"
)

// TimeoutCache memoizes OptimalTimeouts tables keyed by the inputs the
// Eq. 26/34 search actually depends on: the per-path delay
// distributions, the data lifetime δ, and the search options — NOT the
// rate λ, cost budget µ, losses, bandwidths, or costs. The timeout
// t_{i,j} balances two delay tails and nothing else, so adaptive
// re-solves under λ/µ/loss drift (§VIII-A) can reuse the table for free
// while a delay-estimate change recomputes exactly the affected key.
//
// Cached tables are shared between callers and must be treated as
// read-only (do not call Timeouts.Set on them). A TimeoutCache is safe
// for concurrent use.
type TimeoutCache struct {
	mu      sync.Mutex
	entries map[string]*Timeouts
	hits    int64
	misses  int64
}

// NewTimeoutCache returns an empty cache.
func NewTimeoutCache() *TimeoutCache {
	return &TimeoutCache{entries: make(map[string]*Timeouts)}
}

// OptimalTimeouts returns the Eq. 34 timeout table for the network,
// computing it on first use per distinct (delays, lifetime, options)
// key. Paths whose delay model is not one of the built-in distributions
// (Deterministic, Uniform, ShiftedGamma) defeat keying; such networks
// are solved directly on every call and counted as misses.
func (c *TimeoutCache) OptimalTimeouts(n *Network, opts TimeoutOptions) (*Timeouts, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	key, ok := timeoutKey(n, opts.withDefaults())
	if !ok {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return OptimalTimeouts(n, opts)
	}

	c.mu.Lock()
	if to, hit := c.entries[key]; hit {
		c.hits++
		c.mu.Unlock()
		return to, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock: timeout searches are milliseconds-long
	// and concurrent callers with different keys must not serialize.
	// Concurrent same-key callers may both compute; last store wins and
	// both tables are identical (the search is deterministic).
	to, err := OptimalTimeouts(n, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.entries[key] = to
	c.mu.Unlock()
	return to, nil
}

// Stats returns how many lookups hit and missed the cache.
func (c *TimeoutCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached tables.
func (c *TimeoutCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// timeoutKey serializes everything the Eq. 34 search reads. ok = false
// when a path carries a delay model the key cannot identify.
func timeoutKey(n *Network, opts TimeoutOptions) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "δ=%d|grid=%d|refine=%d|nodes=%d",
		int64(n.Lifetime), int64(opts.GridStep), opts.RefineLevels, opts.ConvolutionNodes)
	for _, p := range n.Paths {
		b.WriteByte('|')
		if !writeDelayKey(&b, p.delayDist()) {
			return "", false
		}
	}
	return b.String(), true
}

// writeDelayKey appends a canonical encoding of a built-in delay
// distribution; unknown implementations report false (not cacheable —
// two distinct instances cannot be told apart safely).
func writeDelayKey(b *strings.Builder, d dist.Delay) bool {
	switch v := d.(type) {
	case dist.Deterministic:
		fmt.Fprintf(b, "det:%d", int64(v.D))
	case dist.Uniform:
		fmt.Fprintf(b, "uni:%d,%d", int64(v.Lo), int64(v.Hi))
	case dist.ShiftedGamma:
		fmt.Fprintf(b, "gam:%d,%x,%d", int64(v.Loc), v.Shape, int64(v.Scale))
	default:
		return false
	}
	return true
}

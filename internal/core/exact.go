package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"
	"time"

	"dmc/internal/lp"
	"dmc/internal/ratlp"
)

// ExactPath is a Path with exact rational characteristics, for
// reproducing the paper's CGAL-computed solutions (Table IV's 5/8, 15/16,
// 20/27, …) bit-for-bit.
type ExactPath struct {
	Name string
	// Bandwidth is bᵢ in bits/s; nil means unlimited.
	Bandwidth *big.Rat
	// Delay is the deterministic one-way delay (exact, in nanoseconds).
	Delay time.Duration
	// Loss is τᵢ as an exact rational in [0, 1].
	Loss *big.Rat
	// Cost is cᵢ per bit; nil means zero.
	Cost *big.Rat
}

// ExactNetwork mirrors Network over exact rationals.
type ExactNetwork struct {
	Paths    []ExactPath
	Rate     *big.Rat // λ in bits/s
	Lifetime time.Duration
	// CostBound is µ; nil means unlimited.
	CostBound *big.Rat
	// Transmissions is m; zero defaults to 2.
	Transmissions int
}

// ExactFromFloat converts a float Network into an exact one. Each float64
// is represented exactly as a rational; note that a decimal like 0.2 is
// not the float 0.2, so build ExactNetwork directly with big.Rat values
// when decimal exactness matters (as the Table IV reproduction does).
func ExactFromFloat(n *Network) (*ExactNetwork, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	en := &ExactNetwork{
		Rate:          new(big.Rat).SetFloat64(n.Rate),
		Lifetime:      n.Lifetime,
		Transmissions: n.transmissions(),
	}
	if !math.IsInf(n.CostBound, 1) {
		en.CostBound = new(big.Rat).SetFloat64(n.CostBound)
	}
	for _, p := range n.Paths {
		en.Paths = append(en.Paths, ExactPath{
			Name:      p.Name,
			Bandwidth: new(big.Rat).SetFloat64(p.Bandwidth),
			Delay:     p.Delay,
			Loss:      new(big.Rat).SetFloat64(p.Loss),
			Cost:      new(big.Rat).SetFloat64(p.Cost),
		})
	}
	return en, nil
}

// Validate checks the exact network parameters.
func (n *ExactNetwork) Validate() error {
	if len(n.Paths) == 0 {
		return errors.New("core: exact network has no paths")
	}
	zero := new(big.Rat)
	one := big.NewRat(1, 1)
	if n.Rate == nil || n.Rate.Cmp(zero) <= 0 {
		return fmt.Errorf("core: exact rate %v must be positive", n.Rate)
	}
	if n.Lifetime <= 0 {
		return fmt.Errorf("core: exact lifetime %v must be positive", n.Lifetime)
	}
	if n.CostBound != nil && n.CostBound.Cmp(zero) < 0 {
		return fmt.Errorf("core: exact cost bound %v negative", n.CostBound)
	}
	m := n.transmissions()
	if m < 1 || m > MaxTransmissions {
		return fmt.Errorf("core: transmissions %d outside [1, %d]", m, MaxTransmissions)
	}
	for i, p := range n.Paths {
		if p.Bandwidth != nil && p.Bandwidth.Cmp(zero) <= 0 {
			return fmt.Errorf("core: exact path %d bandwidth must be positive or nil", i)
		}
		if p.Loss == nil || p.Loss.Cmp(zero) < 0 || p.Loss.Cmp(one) > 0 {
			return fmt.Errorf("core: exact path %d loss outside [0,1]", i)
		}
		if p.Delay < 0 {
			return fmt.Errorf("core: exact path %d negative delay", i)
		}
		if p.Cost != nil && p.Cost.Cmp(zero) < 0 {
			return fmt.Errorf("core: exact path %d negative cost", i)
		}
	}
	return nil
}

func (n *ExactNetwork) transmissions() int {
	if n.Transmissions == 0 {
		return 2
	}
	return n.Transmissions
}

// minDelay returns d_min over real paths.
func (n *ExactNetwork) minDelay() time.Duration {
	min := n.Paths[0].Delay
	for _, p := range n.Paths[1:] {
		if p.Delay < min {
			min = p.Delay
		}
	}
	return min
}

// exactModel mirrors model over rationals; path 0 is the blackhole
// (unlimited bandwidth, loss 1, cost 0, infinite delay).
type exactModel struct {
	net   *ExactNetwork
	loss  []*big.Rat // per model path
	cost  []*big.Rat
	bw    []*big.Rat // nil = unlimited
	delay []time.Duration
	m     int
	base  int
	dmin  time.Duration
	nVars int
}

func newExactModel(n *ExactNetwork) (*exactModel, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	em := &exactModel{
		net:   n,
		m:     n.transmissions(),
		dmin:  n.minDelay(),
		loss:  []*big.Rat{big.NewRat(1, 1)},
		cost:  []*big.Rat{new(big.Rat)},
		bw:    []*big.Rat{nil},
		delay: []time.Duration{time.Duration(math.MaxInt64)},
	}
	for _, p := range n.Paths {
		em.loss = append(em.loss, p.Loss)
		if p.Cost != nil {
			em.cost = append(em.cost, p.Cost)
		} else {
			em.cost = append(em.cost, new(big.Rat))
		}
		em.bw = append(em.bw, p.Bandwidth)
		em.delay = append(em.delay, p.Delay)
	}
	em.base = len(em.loss)
	em.nVars = 1
	for i := 0; i < em.m; i++ {
		em.nVars *= em.base
	}
	if em.nVars > 1<<18 {
		return nil, fmt.Errorf("core: exact model with %d variables too large", em.nVars)
	}
	return em, nil
}

func (em *exactModel) combo(l int) Combo {
	c := make(Combo, em.m)
	for k := 0; k < em.m; k++ {
		c[k] = l % em.base
		l /= em.base
	}
	return c
}

func (em *exactModel) index(c Combo) int {
	l := 0
	for k := em.m - 1; k >= 0; k-- {
		l = l*em.base + c[k]
	}
	return l
}

// inTime reports which attempts of c meet the deadline (same schedule rule
// as the float model).
func (em *exactModel) inTime(c Combo) []bool {
	out := make([]bool, len(c))
	var t time.Duration
	reachable := true
	for k, i := range c {
		if i == 0 {
			reachable = false
			continue
		}
		if reachable {
			arrival := t + em.delay[i]
			out[k] = arrival >= 0 && arrival <= em.net.Lifetime
			next := t + em.delay[i] + em.dmin
			if next < t {
				next = time.Duration(math.MaxInt64)
			}
			t = next
		}
	}
	return out
}

// deliveryProb returns the exact p_l.
func (em *exactModel) deliveryProb(c Combo) *big.Rat {
	inTime := em.inTime(c)
	p := new(big.Rat)
	surv := big.NewRat(1, 1)
	one := big.NewRat(1, 1)
	for k, i := range c {
		if inTime[k] {
			succ := new(big.Rat).Sub(one, em.loss[i])
			p.Add(p, succ.Mul(succ, surv))
		}
		surv = new(big.Rat).Mul(surv, em.loss[i])
	}
	return p
}

// sendShare returns per-model-path expected bits per application bit.
func (em *exactModel) sendShare(c Combo) []*big.Rat {
	share := make([]*big.Rat, em.base)
	for i := range share {
		share[i] = new(big.Rat)
	}
	surv := big.NewRat(1, 1)
	for _, i := range c {
		share[i].Add(share[i], surv)
		if i == 0 {
			break
		}
		surv = new(big.Rat).Mul(surv, em.loss[i])
	}
	return share
}

func (em *exactModel) comboCost(c Combo) *big.Rat {
	cost := new(big.Rat)
	surv := big.NewRat(1, 1)
	for _, i := range c {
		term := new(big.Rat).Mul(surv, em.cost[i])
		cost.Add(cost, term)
		if i == 0 {
			break
		}
		surv = new(big.Rat).Mul(surv, em.loss[i])
	}
	return cost
}

// ExactSolution is the exact analogue of Solution.
type ExactSolution struct {
	Network *ExactNetwork
	// X is the exact optimal traffic split over combination indices.
	X []*big.Rat
	// Quality is the exact optimal Q (for SolveMinCostExact, the exact
	// quality the minimum-cost strategy achieves).
	Quality *big.Rat
	// Cost is the exact expected total cost per second; set by
	// SolveMinCostExact (nil on quality solves).
	Cost *big.Rat

	em *exactModel
}

// SolveQualityExact solves the quality maximization with exact rational
// arithmetic, reproducing the paper's CGAL results.
func SolveQualityExact(n *ExactNetwork) (*ExactSolution, error) {
	em, err := newExactModel(n)
	if err != nil {
		return nil, err
	}
	obj := make([]*big.Rat, em.nVars)
	shares := make([][]*big.Rat, em.nVars)
	costs := make([]*big.Rat, em.nVars)
	for l := 0; l < em.nVars; l++ {
		c := em.combo(l)
		obj[l] = em.deliveryProb(c)
		shares[l] = em.sendShare(c)
		costs[l] = em.comboCost(c)
	}

	prob := ratlp.NewProblem(lp.Maximize, obj)
	for i := 1; i < em.base; i++ {
		row := make([]*big.Rat, em.nVars)
		for l := 0; l < em.nVars; l++ {
			row[l] = new(big.Rat).Mul(em.net.Rate, shares[l][i])
		}
		prob.AddConstraint(row, lp.LE, em.bw[i]) // nil bandwidth = vacuous
	}
	if em.net.CostBound != nil {
		row := make([]*big.Rat, em.nVars)
		for l := 0; l < em.nVars; l++ {
			row[l] = new(big.Rat).Mul(em.net.Rate, costs[l])
		}
		prob.AddConstraint(row, lp.LE, em.net.CostBound)
	}
	ones := make([]*big.Rat, em.nVars)
	for l := range ones {
		ones[l] = big.NewRat(1, 1)
	}
	prob.AddConstraint(ones, lp.EQ, big.NewRat(1, 1))

	sol, err := ratlp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: solving exact quality LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: exact quality LP unexpectedly %v", sol.Status)
	}
	return &ExactSolution{Network: n, X: sol.X, Quality: sol.Objective, em: em}, nil
}

// SolveMinCostExact solves the §VI-A cost minimization with exact
// rational arithmetic: minimize the expected total cost per second
// subject to the bandwidth rows, the conservation row, and the quality
// floor p·x ≥ minQuality. The differential reference for the float
// min-cost solve paths (dense, pruned, and column generation). Returns
// ErrInfeasible wrapped in an error when the floor is unattainable.
func SolveMinCostExact(n *ExactNetwork, minQuality *big.Rat) (*ExactSolution, error) {
	if minQuality == nil || minQuality.Sign() < 0 || minQuality.Cmp(big.NewRat(1, 1)) > 0 {
		return nil, fmt.Errorf("core: exact min quality %v outside [0,1]", minQuality)
	}
	em, err := newExactModel(n)
	if err != nil {
		return nil, err
	}
	obj := make([]*big.Rat, em.nVars)
	delivery := make([]*big.Rat, em.nVars)
	shares := make([][]*big.Rat, em.nVars)
	for l := 0; l < em.nVars; l++ {
		c := em.combo(l)
		delivery[l] = em.deliveryProb(c)
		shares[l] = em.sendShare(c)
		obj[l] = new(big.Rat).Mul(em.net.Rate, em.comboCost(c))
	}

	prob := ratlp.NewProblem(lp.Minimize, obj)
	for i := 1; i < em.base; i++ {
		row := make([]*big.Rat, em.nVars)
		for l := 0; l < em.nVars; l++ {
			row[l] = new(big.Rat).Mul(em.net.Rate, shares[l][i])
		}
		prob.AddConstraint(row, lp.LE, em.bw[i]) // nil bandwidth = vacuous
	}
	prob.AddConstraint(delivery, lp.GE, minQuality)
	ones := make([]*big.Rat, em.nVars)
	for l := range ones {
		ones[l] = big.NewRat(1, 1)
	}
	prob.AddConstraint(ones, lp.EQ, big.NewRat(1, 1))

	sol, err := ratlp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: solving exact min-cost LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("core: exact quality %v unattainable: %w", minQuality, ErrInfeasible)
	default:
		return nil, fmt.Errorf("core: exact min-cost LP unexpectedly %v", sol.Status)
	}
	q := new(big.Rat)
	term := new(big.Rat)
	for l, x := range sol.X {
		q.Add(q, term.Mul(delivery[l], x))
	}
	return &ExactSolution{Network: n, X: sol.X, Quality: q, Cost: sol.Objective, em: em}, nil
}

// Fraction returns the exact share of a combination (model indexing).
func (s *ExactSolution) Fraction(c Combo) *big.Rat {
	if len(c) != s.em.m {
		return new(big.Rat)
	}
	for _, i := range c {
		if i < 0 || i >= s.em.base {
			return new(big.Rat)
		}
	}
	return s.X[s.em.index(c)]
}

// ActiveCombos returns the nonzero combinations sorted by decreasing
// share.
func (s *ExactSolution) ActiveCombos() []ExactComboShare {
	var out []ExactComboShare
	zero := new(big.Rat)
	for l, x := range s.X {
		if x.Cmp(zero) > 0 {
			out = append(out, ExactComboShare{Combo: s.em.combo(l), Fraction: x})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		switch out[a].Fraction.Cmp(out[b].Fraction) {
		case 1:
			return true
		case -1:
			return false
		}
		return s.em.index(out[a].Combo) < s.em.index(out[b].Combo)
	})
	return out
}

// ExactComboShare pairs a combination with its exact share.
type ExactComboShare struct {
	Combo    Combo
	Fraction *big.Rat
}

// String renders like a Table IV row, with exact fractions.
func (s *ExactSolution) String() string {
	var b strings.Builder
	q, _ := new(big.Rat).Mul(s.Quality, big.NewRat(100, 1)).Float64()
	fmt.Fprintf(&b, "quality %s (%.1f%%)", s.Quality.RatString(), q)
	for _, cs := range s.ActiveCombos() {
		fmt.Fprintf(&b, "  %s=%s", cs.Combo, cs.Fraction.RatString())
	}
	return b.String()
}

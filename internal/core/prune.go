package core

import (
	"math"
	"sort"
	"time"
)

// maxDominanceChecks caps how many already-kept columns each candidate
// is compared against in the pairwise dominance pass, bounding the
// pruner at O(nVars · maxDominanceChecks · base) instead of quadratic.
// The scan walks the kept list backward, so candidates are checked
// against their closest (delivery, cost) neighbors first — where
// dominators live.
const maxDominanceChecks = 192

// pruneColumns drops combinations that can never be needed by an
// optimal solution, returning the surviving columns (in enumeration
// order) and their original indices. Two passes:
//
// Structural: only canonical combinations survive — nothing may follow
// a blackhole attempt or a zero-survival (loss-free) attempt, and every
// real attempt must arrive within the lifetime. A late attempt adds
// cost and bandwidth share but no delivery, so its combination is
// weakly dominated by the one truncated at the blackhole; non-canonical
// paddings are exact duplicates of their canonical form.
//
// Pairwise: column a weakly dominates b when delivery_a ≥ delivery_b,
// cost_a ≤ cost_b, and share_a[i] ≤ share_b[i] on every real path —
// any feasible traffic on b can move to a without losing delivered
// quality or violating a bandwidth/cost row (the conservation row sees
// coefficient 1 on both). Sorting by (delivery desc, cost asc, share
// sum asc) places every dominator before its dominated column, so one
// forward scan against the kept set suffices.
//
// The same criterion is safe for both solve objectives threading
// through it: quality maximization (delivery is the objective,
// cost/shares are ≤ rows) and cost minimization (cost is the objective,
// delivery is a ≥ row).
func (m *model) pruneColumns(cols *columns) (*columns, []int) {
	n := cols.len()
	base := m.base

	survivors := make([]int, 0, n)
	for l := 0; l < n; l++ {
		if m.canonicalInTime(cols.combos[l]) {
			survivors = append(survivors, l)
		}
	}

	// Sort survivors so dominators precede dominated columns.
	shareSum := func(l int) float64 {
		var s float64
		for i := 1; i < base; i++ {
			s += cols.shares[l*base+i]
		}
		return s
	}
	sort.Slice(survivors, func(a, b int) bool {
		la, lb := survivors[a], survivors[b]
		if cols.delivery[la] != cols.delivery[lb] {
			return cols.delivery[la] > cols.delivery[lb]
		}
		if cols.costs[la] != cols.costs[lb] {
			return cols.costs[la] < cols.costs[lb]
		}
		return shareSum(la) < shareSum(lb)
	})

	kept := make([]int, 0, len(survivors))
	for _, l := range survivors {
		dominated := false
		checks := len(kept)
		if checks > maxDominanceChecks {
			checks = maxDominanceChecks
		}
		for c := 1; c <= checks; c++ {
			if m.dominates(cols, kept[len(kept)-c], l) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, l)
		}
	}

	sort.Ints(kept)
	out := &columns{
		delivery: make([]float64, 0, len(kept)),
		costs:    make([]float64, 0, len(kept)),
		shares:   make([]float64, 0, len(kept)*base),
		combos:   make([]Combo, 0, len(kept)),
	}
	for _, l := range kept {
		out.appendFrom(cols, l, base)
	}
	return out, kept
}

// canonicalInTime reports whether a combination is in canonical form
// (all zeros after the first blackhole or zero-survival attempt) with
// every real attempt arriving within the lifetime.
func (m *model) canonicalInTime(c Combo) bool {
	δ := m.net.Lifetime
	var t time.Duration
	terminated := false
	surv := 1.0
	for _, i := range c {
		if terminated {
			if i != 0 {
				return false
			}
			continue
		}
		if i == 0 {
			terminated = true
			continue
		}
		arrival := t + m.paths[i].Delay
		if arrival < 0 || arrival > δ { // late or overflowed
			return false
		}
		next := arrival + m.dmin
		if next < t { // overflow: any further attempt would be late
			next = time.Duration(math.MaxInt64)
		}
		t = next
		surv *= m.paths[i].Loss
		if surv == 0 {
			terminated = true
		}
	}
	return true
}

// dominates reports whether column a weakly dominates column b.
func (m *model) dominates(cols *columns, a, b int) bool {
	if cols.delivery[a] < cols.delivery[b] || cols.costs[a] > cols.costs[b] {
		return false
	}
	base := m.base
	sa := cols.shares[a*base : (a+1)*base]
	sb := cols.shares[b*base : (b+1)*base]
	for i := 1; i < base; i++ {
		if sa[i] > sb[i] {
			return false
		}
	}
	return true
}

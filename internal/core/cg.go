package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dmc/internal/lp"
)

// Column-generation parameters. The restricted master starts from a
// small greedy seed and alternates LP solves with exact pricing over
// the un-materialized combination space until no column prices
// positive; with a per-iteration batch of columns the iteration count
// stays near the row count, so the cap is a diverged-numerics backstop,
// not a tuning knob.
const (
	cgMaxIterations  = 400
	cgPriceTol       = 1e-9 // reduced-cost threshold: bounds the optimality gap (Σx′ = 1)
	cgColumnsPerIter = 32
	// cgCertTolWarm is the warm re-solves' pricing floor. The optimality
	// gap at termination is bounded by the largest un-added reduced cost
	// (the conservation row fixes Σx′ = 1), so 1e-7 still guarantees the
	// 1e-6 warm/cold agreement contract while letting the oracle's
	// branch-and-bound prune the near-degenerate boundary (hundreds of
	// combinations within 1e-8 of zero) two orders of magnitude earlier
	// than the cold path's 1e-9. runCG supports a separate aggressive
	// intermediate floor, but measurements showed single-floor pricing
	// strictly faster here (smaller floors add more columns per round
	// and converge in fewer, cheaper rounds).
	cgCertTolWarm = 1e-7
)

// errMasterInfeasible marks a restricted master that admits no solution
// over its current column pool. Unreachable for the quality objectives
// (the all-blackhole seed keeps their masters feasible); the min-cost
// driver interprets it as "the pool cannot reach the quality floor yet"
// and either grows the pool or certifies ErrInfeasible.
var errMasterInfeasible = errors.New("core: restricted master infeasible over the current column pool")

// SolveQualityCG solves the quality maximization by column generation
// with a pooled reusable Solver; see Solver.SolveQualityCG.
func SolveQualityCG(n *Network) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveQualityCG(n)
	solverPool.Put(s)
	return sol, err
}

// cgObjective abstracts the objective-specific pieces of the
// column-generation engine — what the restricted master optimizes, how a
// combination's LP column is evaluated, and how new columns are priced
// from the master's duals — so one runCG loop serves quality
// maximization (Eq. 10), §VI-A cost minimization under a quality floor,
// and the §VI-B random-delay columns alike.
type cgObjective interface {
	// assembleInto builds the restricted master over the pooled columns
	// (into the reusable arena when sc is non-nil).
	assembleInto(sc *asmScratch, cs *colSet) *lp.Problem
	// evalColumn computes one combination's LP column — delivery
	// probability, expected cost, per-path send shares — into share
	// (zeroed, length base).
	evalColumn(combo []int, share []float64) (delivery, cost float64)
	// reprice loads the master's dual vector (in its row order) into the
	// pricing oracle.
	reprice(duals []float64)
	// price returns up to cgColumnsPerIter combinations whose pricing
	// gain exceeds floor (reduced cost above floor for maximizations,
	// below −floor for minimizations). The oracle is exact: an empty
	// result certifies no combination prices beyond floor.
	price(floor float64) [][]int
	// seed primes an empty pool with the objective's starting columns
	// (always including the all-blackhole column, which keeps the
	// master feasible at every iteration). scratch is a digit buffer of
	// length ≥ the transmission count.
	seed(cs *colSet, scratch []int)
}

// colSet is the dynamically grown column pool of the restricted master,
// deduplicated by packed combination key.
type colSet struct {
	cols columns
	keys []uint64
	pos  map[uint64]int
}

func newColSet() *colSet {
	return &colSet{pos: make(map[uint64]int)}
}

// add evaluates combo's column under the objective and appends it,
// unless it is already pooled.
func (cs *colSet) add(m *model, obj cgObjective, combo []int) bool {
	key := m.packKey(combo)
	if _, ok := cs.pos[key]; ok {
		return false
	}
	cs.pos[key] = cs.cols.len()
	cs.keys = append(cs.keys, key)
	cs.cols.appendColumn(m.base, obj.evalColumn, combo)
	return true
}

// reevaluate re-prices every pooled column in place against a drifted
// model of the same shape (path count and transmissions unchanged, so
// the packed keys stay valid). This is the warm-resolve pool hit: the
// expensive part of a pooled column — discovering it via the pricing
// oracle — is reused; only the cheap evalColumn pass repeats.
func (cs *colSet) reevaluate(m *model, obj cgObjective) {
	base := m.base
	clear(cs.cols.shares)
	for l, combo := range cs.cols.combos {
		cs.cols.delivery[l], cs.cols.costs[l] = obj.evalColumn(combo, cs.cols.shares[l*base:(l+1)*base])
	}
}

// qualityObjective is the Eq. 10 deterministic-delay quality
// maximization: the master maximizes delivery over bandwidth rows, the
// cost row when the budget is finite and costRow is set, and the
// conservation row; pricing runs the branch-and-bound oracle.
type qualityObjective struct {
	m  *model
	pr *pricer
	// costRow includes the Eq. 16 budget row when the network's bound is
	// finite. The min-cost driver's feasibility stage turns it off: the
	// §VI-A formulation replaces the budget µ with the quality floor.
	costRow bool
}

func (o *qualityObjective) assembleInto(sc *asmScratch, cs *colSet) *lp.Problem {
	return o.m.assembleProblemInto(sc, lp.Maximize, cs.cols.delivery, &cs.cols, nil, o.costRow)
}

func (o *qualityObjective) evalColumn(combo []int, share []float64) (float64, float64) {
	return o.m.columnOf(combo, share)
}

// reprice unpacks the master duals. Dual layout follows
// assembleProblem's row order: one bandwidth row per real path, the
// cost row when present, the conservation row last.
func (o *qualityObjective) reprice(duals []float64) {
	yCost := 0.0
	next := o.m.base - 1
	if o.costRow && !math.IsInf(o.m.net.CostBound, 1) {
		yCost = duals[next]
		next++
	}
	o.pr.repriceQuality(duals[:o.m.base-1], yCost, duals[next])
}

func (o *qualityObjective) price(floor float64) [][]int { return o.pr.price(floor) }

func (o *qualityObjective) seed(cs *colSet, scratch []int) { o.m.seedColumns(cs, o, scratch) }

// SolveQualityCG solves the deterministic-delay quality maximization
// (Eq. 10) without materializing the (n+1)^m combination space: a
// restricted master problem over a generated column pool is solved with
// the reusable simplex, and new columns are priced from its duals by an
// exact branch-and-bound oracle over the odometer space. Terminates at
// the true LP optimum — the oracle proves no combination has positive
// reduced cost — so the result matches dense enumeration to solver
// tolerance wherever both are tractable, while scaling to path counts
// dense enumeration cannot touch (40 paths × 4 transmissions is a
// 2.8M-combination space; the master typically sees a few hundred).
//
// Most callers want SolveQuality, which dispatches here automatically
// above the dense threshold.
func (s *Solver) SolveQualityCG(n *Network) (*Solution, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	obj := &qualityObjective{m: m, pr: newPricer(m), costRow: true}
	cs := newColSet()
	obj.seed(cs, s.scratch(m.m))
	prob, lpSol, iters, _, err := s.runCG(nil, m, cs, obj, nil, cgPriceTol, cgPriceTol, nil)
	if err != nil {
		return nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters}
	return sol, nil
}

// runCG alternates restricted-master LP solves over the column set with
// exact pricing until no combination prices above certTol (which bounds
// the optimality gap), returning the final master problem and LP
// solution plus the iteration count and whether the first master solve
// warm-started. Intermediate rounds price with priceFloor ≥ certTol —
// when a round at the aggressive floor comes back empty, one
// certification round at certTol settles termination.
//
// The first master solves through SolveWith — warm-started from basis
// when non-nil (the incremental re-solve path). Every later iteration
// appends the freshly priced columns onto the still-hot simplex tableau
// (lp.Solver.AppendSolve): the basis stays factorized in place and only
// the new columns are transformed in, instead of reloading the problem
// and re-installing the basis pivot by pivot. Any append failure falls
// back to a full solve of that master (warm when a basis chain is
// available), preserving the guarantee that the incremental path never
// changes the result.
//
// stop, when non-nil, is checked after every master solve and ends the
// loop early without certification — the min-cost feasibility stage
// uses it to grow the pool just until the quality floor is reachable.
//
// A master that comes back infeasible returns errMasterInfeasible
// (possible only for the min-cost objective's first master).
func (s *Solver) runCG(sc *asmScratch, m *model, cs *colSet, obj cgObjective, basis *lp.Basis, priceFloor, certTol float64, stop func(*lp.Solution) bool) (*lp.Problem, *lp.Solution, int, bool, error) {
	chain := basis != nil
	// The persistent-resolve paths (marked by their assembly scratch)
	// need the final basis captured to warm-start the next re-solve;
	// the one-shot CG path needs it only for the append-failure
	// fallback, which re-covers via a plain cold solve.
	capture := sc != nil

	var prob *lp.Problem
	var lpSol *lp.Solution
	var err error
	iters, firstWarm := 0, false
	prevN := -1
	refreshed := false
	for {
		iters++
		if iters > cgMaxIterations {
			return nil, nil, 0, false, fmt.Errorf("core: column generation did not converge within %d iterations", cgMaxIterations)
		}
		prob = obj.assembleInto(sc, cs)
		n := cs.cols.len()
		opts := lp.Options{AssumeValid: true, CaptureBasis: capture || chain}
		solved := false
		if prevN >= 0 && n > prevN {
			if sol, aerr := s.lps.AppendSolve(prob, prevN, opts); aerr == nil {
				lpSol, solved = sol, true
			}
		}
		if !solved {
			if basis != nil {
				opts.WarmBasis = basis.Remap(n, nil)
			}
			lpSol, err = s.lps.SolveWith(prob, opts)
			if err != nil {
				return nil, nil, 0, false, fmt.Errorf("core: solving restricted master: %w", err)
			}
		}
		switch lpSol.Status {
		case lp.Optimal:
		case lp.Infeasible:
			return prob, lpSol, iters, firstWarm, errMasterInfeasible
		default:
			return nil, nil, 0, false, fmt.Errorf("core: restricted master unexpectedly %v", lpSol.Status)
		}
		if iters == 1 {
			firstWarm = lpSol.PhaseISkipped
		}
		if chain {
			basis = lpSol.Basis
		}
		prevN = n

		if stop != nil && stop(lpSol) {
			break
		}

		obj.reprice(lpSol.Dual)
		added, priced := 0, 0
		for _, cand := range obj.price(priceFloor) {
			priced++
			if cs.add(m, obj, cand) {
				added++
			}
		}
		if added == 0 && priceFloor > certTol {
			// Nothing above the aggressive floor: certify at the tight
			// tolerance before declaring optimality.
			for _, cand := range obj.price(certTol) {
				priced++
				if cs.add(m, obj, cand) {
					added++
				}
			}
		}
		if added == 0 {
			// The oracle pricing POOLED columns above the floor means the
			// master's incrementally maintained reduced costs disagree
			// with the raw coefficients — tableau roundoff from the
			// append chain or a long pivot path. The gap is then real
			// (those columns should re-enter the basis), so force one
			// refactorized master solve — a full reload from raw data —
			// and re-price. A second stall right after the refresh is the
			// float solver's precision limit; accept it.
			if priced > 0 && !refreshed {
				refreshed = true
				prevN = -1
				continue
			}
			break // oracle certifies: no combination prices above certTol
		}
		refreshed = false
	}
	return prob, lpSol, iters, firstWarm, nil
}

// seedColumns primes the restricted master: the all-blackhole column
// (which keeps the conservation row feasible at every iteration), one
// single-attempt column per real path, and one greedy chain per
// starting path that extends with the in-time path of largest marginal
// delivery — a cheap approximation of the columns an optimal basis
// tends to use.
func (m *model) seedColumns(cs *colSet, obj cgObjective, scratch []int) {
	combo := scratch[:m.m]
	clearDigits := func(from int) {
		for k := from; k < m.m; k++ {
			combo[k] = 0
		}
	}

	clearDigits(0)
	cs.add(m, obj, combo) // all-blackhole

	δ := m.net.Lifetime
	for i := 1; i < m.base; i++ {
		combo[0] = i
		clearDigits(1)
		cs.add(m, obj, combo) // single attempt on path i

		t := m.paths[i].Delay + m.dmin
		surv := m.paths[i].Loss
		for k := 1; k < m.m; k++ {
			best, bestGain := 0, 0.0
			for j := 1; j < m.base; j++ {
				arrival := t + m.paths[j].Delay
				if arrival < 0 || arrival > δ {
					continue
				}
				if g := surv * (1 - m.paths[j].Loss); g > bestGain {
					best, bestGain = j, g
				}
			}
			combo[k] = best
			if best == 0 {
				clearDigits(k + 1)
				break
			}
			next := t + m.paths[best].Delay + m.dmin
			if next < t {
				next = time.Duration(math.MaxInt64)
			}
			t = next
			surv *= m.paths[best].Loss
		}
		cs.add(m, obj, combo) // greedy chain from path i
	}
}

// pricer is the best-combination oracle for the deterministic-delay
// objectives: given per-path gains loaded from the master duals it finds
// the combinations maximizing the pricing gain
//
//	v(l) = Σ_k surv_k · gain(i_k) − y₀′
//
// by depth-first search over attempt prefixes. For the quality
// maximization the gain of an in-time attempt on real path i is
// (1−τᵢ) − λ(yᵢ + y_c·cᵢ) and v is the reduced cost; for the §VI-A
// cost minimization it is y_q(1−τᵢ) − λ(cᵢ − yᵢ) and v is the negated
// reduced cost (attractive columns price v > 0 either way). In both
// cases a late attempt contributes surv·(−wᵢ) ≤ 0; removing the last
// negative-contribution attempt from any combination never lowers its
// value (later attempts shift earlier and their survival mass grows),
// so some maximizer uses only in-time attempts with gain > 0 — the
// search expands exactly those, with a τ-discounted optimistic bound
// pruning the rest.
type pricer struct {
	m     *model
	δ     time.Duration
	dmin  time.Duration
	trans int

	gain0 []float64       // per model path: α(1−τᵢ) − wᵢ
	delay []time.Duration // per model path
	loss  []float64
	order []int     // real paths with gain0 > 0, best first
	geo   []float64 // geo[r] = Σ_{j<r} τmax^j, for the optimistic bound
	y0    float64

	digits []int
	found  []pricedCombo
	flo    float64 // current recording floor: cgPriceTol until found is full, then the worst kept rc
}

type pricedCombo struct {
	combo []int
	rc    float64
}

func newPricer(m *model) *pricer {
	return &pricer{
		m:      m,
		δ:      m.net.Lifetime,
		dmin:   m.dmin,
		trans:  m.m,
		gain0:  make([]float64, m.base),
		delay:  make([]time.Duration, m.base),
		loss:   make([]float64, m.base),
		order:  make([]int, 0, m.base),
		geo:    make([]float64, m.m+1),
		digits: make([]int, m.m),
	}
}

// bind points the pricer at a drifted model of the same shape (same
// base and transmissions), so a persistent warm-resolve state can reuse
// the pricer's workspaces across solves. Per-path coefficients are
// reloaded by reprice each iteration anyway.
func (p *pricer) bind(m *model) {
	p.m = m
	p.δ = m.net.Lifetime
	p.dmin = m.dmin
}

// repriceQuality loads a quality-master dual vector: yBW has one
// multiplier per real path (model index i at yBW[i-1]), yCost the cost
// row's (0 when absent), y0 the conservation row's.
func (p *pricer) repriceQuality(yBW []float64, yCost, y0 float64) {
	λ := p.m.net.Rate
	p.load(1, func(i int, path *Path) float64 {
		return λ * (yBW[i-1] + yCost*path.Cost)
	}, y0)
}

// repriceMinCost loads a §VI-A master dual vector. The pricing gain of
// a column is its negated reduced cost
//
//	v(l) = y_q·p_l + Σᵢ λyᵢ·shareₗ[i] − λ·costₗ + y₀,
//
// so an in-time attempt on path i gains surv·(y_q(1−τᵢ) − λ(cᵢ−yᵢ)) and
// a late one surv·(λyᵢ − λcᵢ) ≤ 0: the bandwidth duals yᵢ of ≤ rows are
// ≤ 0 and the quality-floor dual y_q of the ≥ row is ≥ 0 in a
// minimization. Both are clamped against the tiny sign violations a
// degenerate basis can leave, which keeps the branch-and-bound argument
// (late attempts never help) airtight at the cost of an O(tol) pricing
// perturbation — far below the certification floor.
func (p *pricer) repriceMinCost(yBW []float64, yQ, y0 float64) {
	λ := p.m.net.Rate
	if yQ < 0 {
		yQ = 0
	}
	p.load(yQ, func(i int, path *Path) float64 {
		w := λ * (path.Cost - yBW[i-1])
		if w < 0 {
			w = 0
		}
		return w
	}, -y0)
}

// load fills the per-path pricing gains gain0[i] = α(1−τᵢ) − w(i) and
// the constant y0 subtracted from every combination's accumulated gain,
// then orders the positive-gain paths best first and rebuilds the
// geometric optimistic-bound table.
func (p *pricer) load(alpha float64, w func(int, *Path) float64, y0 float64) {
	p.y0 = y0
	p.order = p.order[:0]
	τmax := 0.0
	for i := 1; i < p.m.base; i++ {
		path := &p.m.paths[i]
		p.gain0[i] = alpha*(1-path.Loss) - w(i, path)
		p.delay[i] = path.Delay
		p.loss[i] = path.Loss
		if p.gain0[i] > 0 {
			p.order = append(p.order, i)
			if path.Loss > τmax {
				τmax = path.Loss
			}
		}
	}
	// Best-gain-first ordering tightens the top-K floor early.
	for a := 1; a < len(p.order); a++ {
		for b := a; b > 0 && p.gain0[p.order[b]] > p.gain0[p.order[b-1]]; b-- {
			p.order[b], p.order[b-1] = p.order[b-1], p.order[b]
		}
	}
	p.geo[0] = 0
	for r := 1; r <= p.trans; r++ {
		p.geo[r] = 1 + τmax*p.geo[r-1]
	}
}

// price returns up to cgColumnsPerIter combinations with pricing gain
// above the floor.
func (p *pricer) price(floor float64) [][]int {
	p.found = p.found[:0]
	p.flo = floor
	p.dfs(0, 0, 1, 0)
	out := make([][]int, len(p.found))
	for i, f := range p.found {
		out[i] = f.combo
	}
	return out
}

func (p *pricer) record(k int, rc float64) {
	combo := make([]int, p.trans)
	copy(combo, p.digits[:k])
	if len(p.found) < cgColumnsPerIter {
		p.found = append(p.found, pricedCombo{combo, rc})
	} else {
		worstAt, worst := 0, p.found[0].rc
		for i, f := range p.found[1:] {
			if f.rc < worst {
				worstAt, worst = i+1, f.rc
			}
		}
		p.found[worstAt] = pricedCombo{combo, rc}
	}
	if len(p.found) == cgColumnsPerIter {
		p.flo = p.found[0].rc
		for _, f := range p.found[1:] {
			if f.rc < p.flo {
				p.flo = f.rc
			}
		}
	}
}

// dfs explores attempt prefixes. k attempts are committed (p.digits[:k])
// with next send time t, survival mass surv, and accumulated
// contribution acc; terminating here (blackhole-padding the rest) is
// itself a candidate column.
func (p *pricer) dfs(k int, t time.Duration, surv float64, acc float64) {
	if rc := acc - p.y0; rc > p.flo {
		p.record(k, rc)
	}
	if k == p.trans {
		return
	}
	// Optimistic remaining value: every future attempt gains at most the
	// best single-attempt gain, discounted by the largest survivable loss.
	best := 0.0
	if len(p.order) > 0 {
		best = p.gain0[p.order[0]]
	}
	if acc+surv*best*p.geo[p.trans-k]-p.y0 <= p.flo {
		return
	}
	for _, i := range p.order {
		arrival := t + p.delay[i]
		if arrival < 0 || arrival > p.δ {
			continue // late now means late forever: the subtree cannot gain
		}
		next := arrival + p.dmin
		if next < arrival { // overflow
			next = time.Duration(math.MaxInt64)
		}
		p.digits[k] = i
		p.dfs(k+1, next, surv*p.loss[i], acc+surv*p.gain0[i])
	}
}

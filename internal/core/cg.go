package core

import (
	"fmt"
	"math"
	"time"

	"dmc/internal/lp"
)

// Column-generation parameters. The restricted master starts from a
// small greedy seed and alternates LP solves with exact pricing over
// the un-materialized combination space until no column prices
// positive; with a per-iteration batch of columns the iteration count
// stays near the row count, so the cap is a diverged-numerics backstop,
// not a tuning knob.
const (
	cgMaxIterations  = 400
	cgPriceTol       = 1e-9 // reduced-cost threshold: bounds the optimality gap (Σx′ = 1)
	cgColumnsPerIter = 32
	// cgCertTolWarm is the warm re-solves' pricing floor. The optimality
	// gap at termination is bounded by the largest un-added reduced cost
	// (the conservation row fixes Σx′ = 1), so 1e-7 still guarantees the
	// 1e-6 warm/cold agreement contract while letting the oracle's
	// branch-and-bound prune the near-degenerate boundary (hundreds of
	// combinations within 1e-8 of zero) two orders of magnitude earlier
	// than the cold path's 1e-9. runCG supports a separate aggressive
	// intermediate floor, but measurements showed single-floor pricing
	// strictly faster here (smaller floors add more columns per round
	// and converge in fewer, cheaper rounds).
	cgCertTolWarm = 1e-7
)

// SolveQualityCG solves the quality maximization by column generation
// with a pooled reusable Solver; see Solver.SolveQualityCG.
func SolveQualityCG(n *Network) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveQualityCG(n)
	solverPool.Put(s)
	return sol, err
}

// colSet is the dynamically grown column pool of the restricted master,
// deduplicated by packed combination key.
type colSet struct {
	cols columns
	keys []uint64
	pos  map[uint64]int
}

func newColSet() *colSet {
	return &colSet{pos: make(map[uint64]int)}
}

// add evaluates and appends combo's column unless it is already pooled.
func (cs *colSet) add(m *model, combo []int) bool {
	key := m.packKey(combo)
	if _, ok := cs.pos[key]; ok {
		return false
	}
	cs.pos[key] = cs.cols.len()
	cs.keys = append(cs.keys, key)
	cs.cols.appendColumn(m, combo)
	return true
}

// reevaluate re-prices every pooled column in place against a drifted
// model of the same shape (path count and transmissions unchanged, so
// the packed keys stay valid). This is the warm-resolve pool hit: the
// expensive part of a pooled column — discovering it via the pricing
// oracle — is reused; only the cheap columnOf pass repeats.
func (cs *colSet) reevaluate(m *model) {
	base := m.base
	clear(cs.cols.shares)
	for l, combo := range cs.cols.combos {
		cs.cols.delivery[l], cs.cols.costs[l] = m.columnOf(combo, cs.cols.shares[l*base:(l+1)*base])
	}
}

// SolveQualityCG solves the deterministic-delay quality maximization
// (Eq. 10) without materializing the (n+1)^m combination space: a
// restricted master problem over a generated column pool is solved with
// the reusable simplex, and new columns are priced from its duals by an
// exact branch-and-bound oracle over the odometer space. Terminates at
// the true LP optimum — the oracle proves no combination has positive
// reduced cost — so the result matches dense enumeration to solver
// tolerance wherever both are tractable, while scaling to path counts
// dense enumeration cannot touch (40 paths × 4 transmissions is a
// 2.8M-combination space; the master typically sees a few hundred).
//
// Most callers want SolveQuality, which dispatches here automatically
// above the dense threshold.
func (s *Solver) SolveQualityCG(n *Network) (*Solution, error) {
	m, err := newSparseModel(n)
	if err != nil {
		return nil, err
	}
	cs := newColSet()
	m.seedColumns(cs, s.scratch(m.m))
	prob, lpSol, iters, _, err := s.runCG(nil, m, cs, newPricer(m), nil, cgPriceTol, cgPriceTol)
	if err != nil {
		return nil, err
	}
	sol := m.newSolutionIndexed(prob, &cs.cols, lpSol.X, lpSol.Objective, cs.pos)
	sol.Stats = SolveStats{Dispatch: DispatchCG, Columns: cs.cols.len(), CGIterations: iters}
	return sol, nil
}

// runCG alternates restricted-master LP solves over the column set with
// exact pricing until no combination prices above certTol (which bounds
// the optimality gap), returning the final master problem and LP
// solution plus the iteration count and whether the first master solve
// warm-started. Intermediate rounds price with priceFloor ≥ certTol —
// when a round at the aggressive floor comes back empty, one
// certification round at certTol settles termination. basis, when
// non-nil, warm-starts the first master and chains each later iteration
// off its predecessor's optimal basis (remapped across the appended
// columns) — the incremental re-solve path. The cold path passes nil
// and equal floors, keeping its per-iteration cold solves: early
// masters are tiny and reshape fast, where a warm basis buys nothing.
func (s *Solver) runCG(sc *asmScratch, m *model, cs *colSet, pr *pricer, basis *lp.Basis, priceFloor, certTol float64) (*lp.Problem, *lp.Solution, int, bool, error) {
	hasCost := !math.IsInf(m.net.CostBound, 1)
	chain := basis != nil
	// The persistent-resolve paths (marked by their assembly scratch)
	// need the final basis captured to warm-start the next re-solve;
	// the one-shot CG path skips the snapshot.
	capture := sc != nil

	var prob *lp.Problem
	var lpSol *lp.Solution
	var err error
	iters, firstWarm := 0, false
	for {
		iters++
		if iters > cgMaxIterations {
			return nil, nil, 0, false, fmt.Errorf("core: column generation did not converge within %d iterations", cgMaxIterations)
		}
		prob = m.assembleProblemInto(sc, lp.Maximize, cs.cols.delivery, &cs.cols, nil, true)
		opts := lp.Options{AssumeValid: true, CaptureBasis: capture}
		if basis != nil {
			opts.WarmBasis = basis.Remap(cs.cols.len(), nil)
		}
		lpSol, err = s.lps.SolveWith(prob, opts)
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("core: solving restricted master: %w", err)
		}
		if lpSol.Status != lp.Optimal {
			return nil, nil, 0, false, fmt.Errorf("core: restricted master unexpectedly %v", lpSol.Status)
		}
		if iters == 1 {
			firstWarm = lpSol.PhaseISkipped
		}
		if chain {
			basis = lpSol.Basis
		}

		// Dual layout follows assembleProblem's row order: one bandwidth
		// row per real path, the cost row when the budget is finite, the
		// conservation row last.
		duals := lpSol.Dual
		yCost := 0.0
		next := m.base - 1
		if hasCost {
			yCost = duals[next]
			next++
		}
		y0 := duals[next]
		pr.reprice(lpSol.Dual[:m.base-1], yCost, y0)

		added := 0
		for _, cand := range pr.price(priceFloor) {
			if cs.add(m, cand) {
				added++
			}
		}
		if added == 0 && priceFloor > certTol {
			// Nothing above the aggressive floor: certify at the tight
			// tolerance before declaring optimality.
			for _, cand := range pr.price(certTol) {
				if cs.add(m, cand) {
					added++
				}
			}
		}
		if added == 0 {
			break // oracle certifies: no combination prices above certTol
		}
	}
	return prob, lpSol, iters, firstWarm, nil
}

// seedColumns primes the restricted master: the all-blackhole column
// (which keeps the conservation row feasible at every iteration), one
// single-attempt column per real path, and one greedy chain per
// starting path that extends with the in-time path of largest marginal
// delivery — a cheap approximation of the columns an optimal basis
// tends to use.
func (m *model) seedColumns(cs *colSet, scratch []int) {
	combo := scratch[:m.m]
	clearDigits := func(from int) {
		for k := from; k < m.m; k++ {
			combo[k] = 0
		}
	}

	clearDigits(0)
	cs.add(m, combo) // all-blackhole

	δ := m.net.Lifetime
	for i := 1; i < m.base; i++ {
		combo[0] = i
		clearDigits(1)
		cs.add(m, combo) // single attempt on path i

		t := m.paths[i].Delay + m.dmin
		surv := m.paths[i].Loss
		for k := 1; k < m.m; k++ {
			best, bestGain := 0, 0.0
			for j := 1; j < m.base; j++ {
				arrival := t + m.paths[j].Delay
				if arrival < 0 || arrival > δ {
					continue
				}
				if g := surv * (1 - m.paths[j].Loss); g > bestGain {
					best, bestGain = j, g
				}
			}
			combo[k] = best
			if best == 0 {
				clearDigits(k + 1)
				break
			}
			next := t + m.paths[best].Delay + m.dmin
			if next < t {
				next = time.Duration(math.MaxInt64)
			}
			t = next
			surv *= m.paths[best].Loss
		}
		cs.add(m, combo) // greedy chain from path i
	}
}

// pricer is the best-combination oracle: given the master duals it
// finds the combinations maximizing reduced cost
//
//	rc(l) = p_l − Σᵢ yᵢ·λ·shareₗ[i] − y_c·λ·costₗ − y₀
//
// by depth-first search over attempt prefixes. Every attempt on real
// path i at send time t contributes surv·g_i when in time (g_i =
// (1−τᵢ) − λ(yᵢ + y_c·cᵢ)) and surv·(−λ(yᵢ+y_c·cᵢ)) ≤ 0 when late;
// removing the last negative-contribution attempt from any combination
// never lowers its value (later attempts shift earlier and their
// survival mass grows), so some maximizer uses only in-time attempts
// with g_i > 0 — the search expands exactly those, with a τ-discounted
// optimistic bound pruning the rest.
type pricer struct {
	m     *model
	δ     time.Duration
	dmin  time.Duration
	trans int

	gain0 []float64       // per model path: (1−τᵢ) − wᵢ
	delay []time.Duration // per model path
	loss  []float64
	order []int     // real paths with gain0 > 0, best first
	geo   []float64 // geo[r] = Σ_{j<r} τmax^j, for the optimistic bound
	y0    float64

	digits []int
	found  []pricedCombo
	flo    float64 // current recording floor: cgPriceTol until found is full, then the worst kept rc
}

type pricedCombo struct {
	combo []int
	rc    float64
}

func newPricer(m *model) *pricer {
	return &pricer{
		m:      m,
		δ:      m.net.Lifetime,
		dmin:   m.dmin,
		trans:  m.m,
		gain0:  make([]float64, m.base),
		delay:  make([]time.Duration, m.base),
		loss:   make([]float64, m.base),
		order:  make([]int, 0, m.base),
		geo:    make([]float64, m.m+1),
		digits: make([]int, m.m),
	}
}

// bind points the pricer at a drifted model of the same shape (same
// base and transmissions), so a persistent warm-resolve state can reuse
// the pricer's workspaces across solves. Per-path coefficients are
// reloaded by reprice each iteration anyway.
func (p *pricer) bind(m *model) {
	p.m = m
	p.δ = m.net.Lifetime
	p.dmin = m.dmin
}

// reprice loads a new dual vector: yBW has one multiplier per real path
// (model index i at yBW[i-1]).
func (p *pricer) reprice(yBW []float64, yCost, y0 float64) {
	λ := p.m.net.Rate
	p.y0 = y0
	p.order = p.order[:0]
	τmax := 0.0
	for i := 1; i < p.m.base; i++ {
		path := &p.m.paths[i]
		w := λ * (yBW[i-1] + yCost*path.Cost)
		p.gain0[i] = (1 - path.Loss) - w
		p.delay[i] = path.Delay
		p.loss[i] = path.Loss
		if p.gain0[i] > 0 {
			p.order = append(p.order, i)
			if path.Loss > τmax {
				τmax = path.Loss
			}
		}
	}
	// Best-gain-first ordering tightens the top-K floor early.
	for a := 1; a < len(p.order); a++ {
		for b := a; b > 0 && p.gain0[p.order[b]] > p.gain0[p.order[b-1]]; b-- {
			p.order[b], p.order[b-1] = p.order[b-1], p.order[b]
		}
	}
	p.geo[0] = 0
	for r := 1; r <= p.trans; r++ {
		p.geo[r] = 1 + τmax*p.geo[r-1]
	}
}

// price returns up to cgColumnsPerIter combinations with reduced cost
// above the floor.
func (p *pricer) price(floor float64) [][]int {
	p.found = p.found[:0]
	p.flo = floor
	p.dfs(0, 0, 1, 0)
	out := make([][]int, len(p.found))
	for i, f := range p.found {
		out[i] = f.combo
	}
	return out
}

func (p *pricer) record(k int, rc float64) {
	combo := make([]int, p.trans)
	copy(combo, p.digits[:k])
	if len(p.found) < cgColumnsPerIter {
		p.found = append(p.found, pricedCombo{combo, rc})
	} else {
		worstAt, worst := 0, p.found[0].rc
		for i, f := range p.found[1:] {
			if f.rc < worst {
				worstAt, worst = i+1, f.rc
			}
		}
		p.found[worstAt] = pricedCombo{combo, rc}
	}
	if len(p.found) == cgColumnsPerIter {
		p.flo = p.found[0].rc
		for _, f := range p.found[1:] {
			if f.rc < p.flo {
				p.flo = f.rc
			}
		}
	}
}

// dfs explores attempt prefixes. k attempts are committed (p.digits[:k])
// with next send time t, survival mass surv, and accumulated
// contribution acc; terminating here (blackhole-padding the rest) is
// itself a candidate column.
func (p *pricer) dfs(k int, t time.Duration, surv float64, acc float64) {
	if rc := acc - p.y0; rc > p.flo {
		p.record(k, rc)
	}
	if k == p.trans {
		return
	}
	// Optimistic remaining value: every future attempt gains at most the
	// best single-attempt gain, discounted by the largest survivable loss.
	best := 0.0
	if len(p.order) > 0 {
		best = p.gain0[p.order[0]]
	}
	if acc+surv*best*p.geo[p.trans-k]-p.y0 <= p.flo {
		return
	}
	for _, i := range p.order {
		arrival := t + p.delay[i]
		if arrival < 0 || arrival > p.δ {
			continue // late now means late forever: the subtree cannot gain
		}
		next := arrival + p.dmin
		if next < arrival { // overflow
			next = time.Duration(math.MaxInt64)
		}
		p.digits[k] = i
		p.dfs(k+1, next, surv*p.loss[i], acc+surv*p.gain0[i])
	}
}

package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// diffRandomNetwork draws a random valid network (mirroring the Figure 4
// instance generator, kept local to avoid a test-only dependency on
// internal/experiments).
func diffRandomNetwork(rng *rand.Rand, paths, transmissions int) *Network {
	ps := make([]Path, paths)
	var total float64
	for i := range ps {
		bw := (10 + rng.Float64()*90) * Mbps
		total += bw
		ps[i] = Path{
			Bandwidth: bw,
			Delay:     time.Duration(50+rng.IntN(450)) * time.Millisecond,
			Loss:      rng.Float64() * 0.3,
			Cost:      rng.Float64(),
		}
	}
	n := NewNetwork(0.8*total, time.Second, ps...)
	n.Transmissions = transmissions
	n.CostBound = total
	return n
}

// TestPooledSolverMatchesExact is the differential property test for the
// pooled float solve path: on ~200 randomized networks the reusable
// Solver must agree with the exact rational simplex (the paper's CGAL
// stand-in) on the optimal quality to 1e-6, and its solution must be
// primal-feasible under the exact model's constraints (quality equals
// the certified optimum, so feasibility + agreement pin the solution).
func TestPooledSolverMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xd1ff, 0x5eed))
	s := NewSolver()
	for trial := 0; trial < 200; trial++ {
		paths := 2 + rng.IntN(3)         // 2–4 paths
		transmissions := 2 + rng.IntN(2) // 2–3 transmissions
		if paths == 4 && transmissions == 3 {
			// 125 exact rational variables is disproportionately slow
			// under -race; the 4-path coverage stays at m = 2.
			transmissions = 2
		}
		net := diffRandomNetwork(rng, paths, transmissions)

		sol, err := s.SolveQuality(net)
		if err != nil {
			t.Fatalf("trial %d: pooled solve: %v", trial, err)
		}
		enet, err := ExactFromFloat(net)
		if err != nil {
			t.Fatalf("trial %d: exact conversion: %v", trial, err)
		}
		esol, err := SolveQualityExact(enet)
		if err != nil {
			t.Fatalf("trial %d: exact solve: %v", trial, err)
		}
		exact, _ := esol.Quality.Float64()
		if diff := math.Abs(sol.Quality - exact); diff > 1e-6 {
			t.Errorf("trial %d (paths=%d m=%d): pooled quality %v vs exact %v (diff %v)",
				trial, paths, transmissions, sol.Quality, exact, diff)
		}
		// The split must remain a distribution.
		var mass float64
		for _, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: negative share %v", trial, x)
			}
			mass += x
		}
		if math.Abs(mass-1) > 1e-6 {
			t.Errorf("trial %d: split mass %v, want 1", trial, mass)
		}
	}
}

// TestScalableSolversMatchExact: the scalable solve paths — dominance-
// pruned dense enumeration and column generation — must agree with the
// exact rational simplex (the paper's CGAL stand-in) to 1e-6 on ≥100
// randomized networks, sizes where all three are tractable.
func TestScalableSolversMatchExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xabcd, 0xef01))
	pruned := NewSolver()
	pruned.PruneThreshold = 1 // force the pruner at every size
	pruned.DenseThreshold = DenseLimit
	cg := NewSolver()
	cg.DenseThreshold = -1 // force column generation at every size
	for trial := 0; trial < 120; trial++ {
		paths := 2 + rng.IntN(3)         // 2–4 paths
		transmissions := 2 + rng.IntN(2) // 2–3 transmissions
		if paths == 4 && transmissions == 3 {
			// 125 exact rational variables is disproportionately slow
			// under -race; the 4-path coverage stays at m = 2.
			transmissions = 2
		}
		net := diffRandomNetwork(rng, paths, transmissions)

		enet, err := ExactFromFloat(net)
		if err != nil {
			t.Fatalf("trial %d: exact conversion: %v", trial, err)
		}
		esol, err := SolveQualityExact(enet)
		if err != nil {
			t.Fatalf("trial %d: exact solve: %v", trial, err)
		}
		exact, _ := esol.Quality.Float64()

		psol, err := pruned.SolveQuality(net)
		if err != nil {
			t.Fatalf("trial %d: pruned solve: %v", trial, err)
		}
		if diff := math.Abs(psol.Quality - exact); diff > 1e-6 {
			t.Errorf("trial %d (paths=%d m=%d): pruned quality %v vs exact %v (diff %v, kept %d of %d)",
				trial, paths, transmissions, psol.Quality, exact, diff, psol.Stats.Columns, psol.Stats.PrunedFrom)
		}
		csol, err := cg.SolveQuality(net)
		if err != nil {
			t.Fatalf("trial %d: cg solve: %v", trial, err)
		}
		if diff := math.Abs(csol.Quality - exact); diff > 1e-6 {
			t.Errorf("trial %d (paths=%d m=%d): cg quality %v vs exact %v (diff %v, %d iterations, %d columns)",
				trial, paths, transmissions, csol.Quality, exact, diff, csol.Stats.CGIterations, csol.Stats.Columns)
		}
	}
}

// TestSolverReuseIsDeterministic: reusing one Solver across differently
// shaped problems must give byte-identical results to fresh solves —
// stale workspace contents must never leak into a later solve.
func TestSolverReuseIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	s := NewSolver()
	for trial := 0; trial < 40; trial++ {
		net := diffRandomNetwork(rng, 2+rng.IntN(5), 1+rng.IntN(3))
		reused, err := s.SolveQuality(net)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewSolver().SolveQuality(net)
		if err != nil {
			t.Fatal(err)
		}
		if reused.Quality != fresh.Quality {
			t.Fatalf("trial %d: reused solver quality %v != fresh %v", trial, reused.Quality, fresh.Quality)
		}
		for l := range reused.X {
			if reused.X[l] != fresh.X[l] {
				t.Fatalf("trial %d: X[%d] differs: %v vs %v", trial, l, reused.X[l], fresh.X[l])
			}
		}
	}
}

// TestSolveManyMatchesSequential: the batch API must return the same
// solutions, in order, as one-at-a-time solves.
func TestSolveManyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	nets := make([]*Network, 32)
	for i := range nets {
		nets[i] = diffRandomNetwork(rng, 2+rng.IntN(4), 2)
	}
	sols, err := SolveMany(nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nets {
		want, err := SolveQuality(n)
		if err != nil {
			t.Fatal(err)
		}
		if sols[i] == nil || sols[i].Quality != want.Quality {
			t.Errorf("batch[%d] quality %v, want %v", i, sols[i].Quality, want.Quality)
		}
	}
}

// TestSolveManyConcurrent hammers SolveMany from several goroutines at
// once — run under -race (the CI test target does) this is the
// data-race check for the shared solver pool and batch fan-out.
func TestSolveManyConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	nets := make([]*Network, 24)
	for i := range nets {
		nets[i] = diffRandomNetwork(rng, 2+rng.IntN(3), 2)
	}
	want, err := SolveMany(nets)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols, err := SolveMany(nets)
			if err != nil {
				t.Errorf("concurrent SolveMany: %v", err)
				return
			}
			for i := range sols {
				if sols[i].Quality != want[i].Quality {
					t.Errorf("concurrent batch[%d] quality %v, want %v", i, sols[i].Quality, want[i].Quality)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSolveManyError: a failing network reports an error and leaves the
// unfailed entries usable.
func TestSolveManyError(t *testing.T) {
	good := diffRandomNetwork(rand.New(rand.NewPCG(1, 2)), 2, 2)
	bad := &Network{} // no paths
	if _, err := SolveMany([]*Network{good, bad}); err == nil {
		t.Fatal("want error for invalid network")
	}
	sols, err := SolveMany([]*Network{good})
	if err != nil || sols[0] == nil {
		t.Fatalf("good-only batch failed: %v", err)
	}
}

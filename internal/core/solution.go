package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dmc/internal/lp"
)

// Dispatch names which solve core produced a Solution.
type Dispatch string

const (
	// DispatchDense is plain dense enumeration of every combination.
	DispatchDense Dispatch = "dense"
	// DispatchPruned is dense enumeration after dominance pruning.
	DispatchPruned Dispatch = "dense-pruned"
	// DispatchCG is column generation over a restricted master problem.
	DispatchCG Dispatch = "cg"
)

// SolveStats records how a solve was dispatched and what it cost.
type SolveStats struct {
	// Dispatch is the solve core that produced the solution.
	Dispatch Dispatch
	// Columns is how many LP columns the (final) master problem held:
	// the full combination count for dense, the surviving subset after
	// pruning, or the generated pool for column generation.
	Columns int
	// PrunedFrom is the dense combination count before dominance
	// pruning (0 when no pruning ran).
	PrunedFrom int
	// CGIterations counts restricted-master solves (0 unless column
	// generation ran).
	CGIterations int
	// Warm reports the solve ran incrementally from a Solver's
	// persistent re-solve state (Solver.Resolve with a matching network
	// shape): columns were rebuilt in place and, for column generation,
	// the pooled columns were repriced instead of regenerated.
	Warm bool
	// PhaseISkipped reports the first LP solve re-installed the previous
	// optimal basis as a feasible starting point and skipped simplex
	// Phase I entirely.
	PhaseISkipped bool
	// PoolHits counts column-generation columns reused (repriced in
	// place) from the persistent pool; PoolAdded counts columns the
	// pricing oracle newly generated during this solve. Both are zero
	// outside the CG dispatch.
	PoolHits  int
	PoolAdded int
}

// Solution is an optimal sending strategy: the fraction of application
// traffic to assign to every path combination, plus the resulting metrics
// of Table II.
type Solution struct {
	// Network is the scenario the solution was computed for.
	Network *Network
	// X is the optimal traffic split x′ over path combinations, parallel
	// to Combos(). For a plain dense solve it is indexed by the Eq. 13
	// combination index (little-endian path digits, blackhole = digit 0);
	// pruned and column-generated solves carry only the combinations
	// their master problem held. It sums to 1 either way.
	X []float64
	// Quality is Q = G/λ ∈ [0, 1] (Eq. 6): the fraction of application
	// data expected to arrive before its deadline.
	Quality float64
	// Stats records which solve core ran and what it cost.
	Stats SolveStats

	m        *model
	problem  *lp.Problem
	combos   []Combo
	delivery []float64
	// shares is the send-share matrix in flat row-major form:
	// combination l's share of model path i at shares[l*base+i].
	shares []float64
	costs  []float64
	// colIndex maps a combination's packed key to its position in the
	// tables above; nil means the dense enumeration order.
	colIndex map[uint64]int
}

// ComboShare pairs a path combination with its traffic share.
type ComboShare struct {
	// Combo is the path combination (model indexing: 0 = blackhole).
	Combo Combo
	// Fraction is the share of application traffic assigned to it.
	Fraction float64
	// DeliveryProb is p_l, its in-time delivery probability.
	DeliveryProb float64
}

// Fraction returns the traffic share of a specific combination, given in
// model indexing (0 = blackhole, k = Paths[k-1]). Combinations the
// solve's master problem never carried (pruned or not generated) hold
// zero traffic by construction.
func (s *Solution) Fraction(c Combo) float64 {
	if len(c) != s.m.m {
		return 0
	}
	for _, i := range c {
		if i < 0 || i >= s.m.base {
			return 0
		}
	}
	if s.colIndex != nil {
		if pos, ok := s.colIndex[s.m.packKey(c)]; ok {
			return s.X[pos]
		}
		return 0
	}
	return s.X[s.m.index(c)]
}

// ActiveCombos returns the combinations carrying at least minFraction of
// the traffic, sorted by decreasing share (ties by combination key).
func (s *Solution) ActiveCombos(minFraction float64) []ComboShare {
	var out []ComboShare
	for l, x := range s.X {
		if x >= minFraction && x > 0 {
			out = append(out, ComboShare{Combo: s.combos[l], Fraction: x, DeliveryProb: s.delivery[l]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Fraction != out[b].Fraction {
			return out[a].Fraction > out[b].Fraction
		}
		return s.m.packKey(out[a].Combo) < s.m.packKey(out[b].Combo)
	})
	return out
}

// SentRate returns Sᵢ (Eq. 2): the expected bit rate sent along real path
// i (0-based index into Network.Paths).
func (s *Solution) SentRate(i int) float64 {
	model := i + 1 // shift past the blackhole
	base := s.m.base
	var rate float64
	for l, x := range s.X {
		rate += x * s.shares[l*base+model]
	}
	return rate * s.Network.Rate
}

// DropRate returns the bit rate deliberately discarded via the blackhole
// on first transmission.
func (s *Solution) DropRate() float64 {
	var rate float64
	for l, x := range s.X {
		if s.combos[l][0] == 0 {
			rate += x
		}
	}
	return rate * s.Network.Rate
}

// Goodput returns G = Q·λ (Eqs. 5–6) in bits per second.
func (s *Solution) Goodput() float64 { return s.Quality * s.Network.Rate }

// Cost returns C (Eq. 7): the expected total cost per second.
func (s *Solution) Cost() float64 {
	var c float64
	for l, x := range s.X {
		c += x * s.costs[l]
	}
	return c * s.Network.Rate
}

// Timeouts returns the deterministic retransmission timeouts tᵢ = dᵢ +
// d_min (Eq. 4) for each real path, plus an optional safety margin (the
// paper's Experiment 1 adds 100 ms for queueing deviation).
func (s *Solution) Timeouts(margin time.Duration) []time.Duration {
	out := make([]time.Duration, len(s.Network.Paths))
	dmin := s.Network.MinDelay()
	for i, p := range s.Network.Paths {
		out[i] = p.meanDelay() + dmin + margin
	}
	return out
}

// Problem exposes the underlying linear program (for diagnostics and the
// solver-ablation benchmarks).
func (s *Solution) Problem() *lp.Problem { return s.problem }

// Combos returns every path combination in variable order (parallel to X).
// The slice is shared; callers must not mutate it.
func (s *Solution) Combos() []Combo { return s.combos }

// DeliveryProbs returns p_l per combination in variable order (parallel to
// X). The slice is shared; callers must not mutate it.
func (s *Solution) DeliveryProbs() []float64 { return s.delivery }

// String renders the strategy like the paper's Table IV rows.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quality %.4f (%.1f%%)", s.Quality, s.Quality*100)
	for _, cs := range s.ActiveCombos(1e-9) {
		fmt.Fprintf(&b, "  %s=%.4g", cs.Combo, cs.Fraction)
	}
	return b.String()
}

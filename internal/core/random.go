package core

import (
	"errors"
	"fmt"

	"dmc/internal/dist"
	"dmc/internal/lp"
)

// ErrRandomNeedsTwoTransmissions is returned by SolveQualityRandom for
// m ≠ 2: the paper's random-delay extension (Eqs. 27–30) is formulated for
// one retransmission, and the timeout table t_{i,j} is pairwise.
var ErrRandomNeedsTwoTransmissions = errors.New("core: random-delay model requires Transmissions == 2")

// SolveQualityRandom solves the random-delay model with a pooled reusable
// Solver; see Solver.SolveQualityRandom.
func SolveQualityRandom(n *Network, to *Timeouts) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveQualityRandom(n, to)
	solverPool.Put(s)
	return sol, err
}

// SolveQualityRandom solves the §VI-B random-delay model: path delays are
// distributions (Path.RandDelay, falling back to a point mass at
// Path.Delay), retransmissions fire at the given timeouts, and the LP
// coefficients follow Eqs. 27–30:
//
//	P(retransᵢⱼ) = 1 − P(dᵢ + d_min ≤ t_{i,j})·(1−τᵢ)                 (27)
//	p_l = P(dᵢ ≤ δ)(1−τᵢ) + P(retransᵢⱼ)·P(t_{i,j}+dⱼ ≤ δ)(1−τⱼ)      (28)
//
// with bandwidth (29) and cost (30) rows using P(retransᵢⱼ) in place of
// τᵢ. Combinations whose first attempt is the blackhole deliver nothing
// and are never retransmitted; combinations with an undefined timeout
// cannot retransmit in time (their delivery reduces to the first attempt).
//
// Dispatch scales with the pair count (n+1)²: small spaces enumerate
// densely, larger ones — including path counts whose pair space exceeds
// DenseLimit — solve by column generation (SolveQualityRandomCG). Both
// reach the same LP optimum; Solution.Stats reports which core ran.
func (s *Solver) SolveQualityRandom(n *Network, to *Timeouts) (*Solution, error) {
	if !s.denseDispatchOK(n) {
		return s.SolveQualityRandomCG(n, to)
	}
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	if m.m != 2 {
		return nil, ErrRandomNeedsTwoTransmissions
	}
	if err := validateTimeouts(n, to); err != nil {
		return nil, err
	}

	cols := m.randomColumns(to)
	prob := m.assembleProblem(lp.Maximize, cols.delivery, cols, nil, true)
	sol, err := s.lps.SolveWith(prob, lp.Options{AssumeValid: true})
	if err != nil {
		return nil, fmt.Errorf("core: solving random-delay LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: random-delay LP unexpectedly %v", sol.Status)
	}
	out := m.newSolution(prob, cols, sol.X, sol.Objective)
	out.Stats = SolveStats{Dispatch: DispatchDense, Columns: cols.len()}
	return out, nil
}

// validateTimeouts checks the timeout table matches the network's path
// count.
func validateTimeouts(n *Network, to *Timeouts) error {
	toSize := 0
	if to != nil {
		toSize = len(to.T)
	}
	if toSize != len(n.Paths) {
		return fmt.Errorf("core: timeout table size %d, want %d", toSize, len(n.Paths))
	}
	return nil
}

// randomColumns evaluates Eqs. 27–30 for every combination (m = 2) into
// flat column tables.
func (m *model) randomColumns(to *Timeouts) *columns {
	cols := newColumns(m.nVars, m.base, 2)
	m.randomColumnsInto(cols, to)
	return cols
}

// randomColumnsInto re-evaluates the dense random-delay column tables in
// place for a model whose coefficients (delays, losses, costs, timeouts)
// drifted but whose shape did not: cols must have been built for the
// same (nVars, base, 2). Every entry is overwritten — the random-delay
// analogue of computeColumnsInto on the incremental warm path.
func (m *model) randomColumnsInto(cols *columns, to *Timeouts) {
	n := m.net
	δ := n.Lifetime
	ack := n.Paths[n.AckPathIndex()].delayDist()

	// rtt[i] is the distribution of dᵢ + d_min for real path i (1-based
	// model index i corresponds to Paths[i-1]).
	rtt := make([]*dist.Sum, m.base)
	for i := 1; i < m.base; i++ {
		rtt[i] = dist.NewSum(n.Paths[i-1].delayDist(), ack)
	}

	base, nVars := m.base, m.nVars
	clear(cols.shares)
	clear(cols.delivery)
	clear(cols.costs)
	for l := 0; l < nVars; l++ {
		i, j := l%base, l/base
		cols.combos[l][0], cols.combos[l][1] = i, j
		share := cols.shares[l*base : (l+1)*base]

		if m.isBlackhole(i) {
			// Dropped on arrival at the sender: nothing delivered,
			// nothing retransmitted, no cost.
			share[0] = 1
			continue
		}

		pi := n.Paths[i-1]
		di := pi.delayDist()
		firstInTime := di.CDF(δ)
		delivery := firstInTime * (1 - pi.Loss)
		share[i] += 1
		cost := pi.Cost

		// Retransmission leg.
		var pRetrans, pRetransDeliver float64
		if m.isBlackhole(j) {
			// Drop after first failure; charge the blackhole nominally.
			pRetrans = 1 - rtt[i].CDF(δ)*(1-pi.Loss)
			share[0] += pRetrans
		} else {
			pj := n.Paths[j-1]
			t, ok := to.Get(i-1, j-1)
			if ok {
				pRetrans = 1 - rtt[i].CDF(t)*(1-pi.Loss)
				pRetransDeliver = pj.delayDist().CDF(δ-t) * (1 - pj.Loss)
			} else {
				// No timeout makes the retransmission useful; a sender
				// assigned this combination would wait until the deadline
				// and the retransmission never delivers in time. The
				// column is dominated by (i, blackhole).
				pRetrans = 1 - rtt[i].CDF(δ)*(1-pi.Loss)
			}
			share[j] += pRetrans
			cost += pRetrans * pj.Cost
		}
		cols.delivery[l] = clamp01(delivery + pRetrans*pRetransDeliver)
		cols.costs[l] = cost
	}
}

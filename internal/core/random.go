package core

import (
	"errors"
	"fmt"
	"math"

	"dmc/internal/dist"
	"dmc/internal/lp"
)

// ErrRandomNeedsTwoTransmissions is returned by SolveQualityRandom for
// m ≠ 2: the paper's random-delay extension (Eqs. 27–30) is formulated for
// one retransmission, and the timeout table t_{i,j} is pairwise.
var ErrRandomNeedsTwoTransmissions = errors.New("core: random-delay model requires Transmissions == 2")

// SolveQualityRandom solves the §VI-B random-delay model: path delays are
// distributions (Path.RandDelay, falling back to a point mass at
// Path.Delay), retransmissions fire at the given timeouts, and the LP
// coefficients follow Eqs. 27–30:
//
//	P(retransᵢⱼ) = 1 − P(dᵢ + d_min ≤ t_{i,j})·(1−τᵢ)                 (27)
//	p_l = P(dᵢ ≤ δ)(1−τᵢ) + P(retransᵢⱼ)·P(t_{i,j}+dⱼ ≤ δ)(1−τⱼ)      (28)
//
// with bandwidth (29) and cost (30) rows using P(retransᵢⱼ) in place of
// τᵢ. Combinations whose first attempt is the blackhole deliver nothing
// and are never retransmitted; combinations with an undefined timeout
// cannot retransmit in time (their delivery reduces to the first attempt).
func SolveQualityRandom(n *Network, to *Timeouts) (*Solution, error) {
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}
	if m.m != 2 {
		return nil, ErrRandomNeedsTwoTransmissions
	}
	toSize := 0
	if to != nil {
		toSize = len(to.T)
	}
	if toSize != len(n.Paths) {
		return nil, fmt.Errorf("core: timeout table size %d, want %d", toSize, len(n.Paths))
	}

	coeff := m.randomCoefficients(to)

	obj := make([]float64, m.nVars)
	for l := range obj {
		obj[l] = coeff.delivery[l]
	}
	p := lp.NewProblem(lp.Maximize, obj)
	m.addCommonRowsWith(p, coeff.shares, coeff.costs)

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("core: solving random-delay LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: random-delay LP unexpectedly %v", sol.Status)
	}

	s := &Solution{
		Network:  n,
		X:        sol.X,
		Quality:  clamp01(sol.Objective),
		m:        m,
		problem:  p,
		combos:   make([]Combo, m.nVars),
		delivery: coeff.delivery,
		shares:   coeff.shares,
		costs:    coeff.costs,
	}
	for l := 0; l < m.nVars; l++ {
		s.combos[l] = m.combo(l)
	}
	return s, nil
}

// randomCoeffs holds per-combination LP coefficients under random delays.
type randomCoeffs struct {
	delivery []float64
	shares   [][]float64
	costs    []float64
}

// randomCoefficients evaluates Eqs. 27–30 for every combination.
func (m *model) randomCoefficients(to *Timeouts) *randomCoeffs {
	n := m.net
	δ := n.Lifetime
	ack := n.Paths[n.AckPathIndex()].delayDist()

	// rtt[i] is the distribution of dᵢ + d_min for real path i (1-based
	// model index i corresponds to Paths[i-1]).
	rtt := make([]*dist.Sum, m.base)
	for i := 1; i < m.base; i++ {
		rtt[i] = dist.NewSum(n.Paths[i-1].delayDist(), ack)
	}

	out := &randomCoeffs{
		delivery: make([]float64, m.nVars),
		shares:   make([][]float64, m.nVars),
		costs:    make([]float64, m.nVars),
	}
	for l := 0; l < m.nVars; l++ {
		c := m.combo(l)
		i, j := c[0], c[1]
		share := make([]float64, m.base)
		out.shares[l] = share

		if m.isBlackhole(i) {
			// Dropped on arrival at the sender: nothing delivered,
			// nothing retransmitted, no cost.
			share[0] = 1
			continue
		}

		pi := n.Paths[i-1]
		di := pi.delayDist()
		firstInTime := di.CDF(δ)
		delivery := firstInTime * (1 - pi.Loss)
		share[i] += 1
		cost := pi.Cost

		// Retransmission leg.
		var pRetrans, pRetransDeliver float64
		if m.isBlackhole(j) {
			// Drop after first failure; charge the blackhole nominally.
			pRetrans = 1 - rtt[i].CDF(δ)*(1-pi.Loss)
			share[0] += pRetrans
		} else {
			pj := n.Paths[j-1]
			t, ok := to.Get(i-1, j-1)
			if ok {
				pRetrans = 1 - rtt[i].CDF(t)*(1-pi.Loss)
				pRetransDeliver = pj.delayDist().CDF(δ-t) * (1 - pj.Loss)
			} else {
				// No timeout makes the retransmission useful; a sender
				// assigned this combination would wait until the deadline
				// and the retransmission never delivers in time. The
				// column is dominated by (i, blackhole).
				pRetrans = 1 - rtt[i].CDF(δ)*(1-pi.Loss)
			}
			share[j] += pRetrans
			cost += pRetrans * pj.Cost
		}
		out.delivery[l] = clamp01(delivery + pRetrans*pRetransDeliver)
		out.costs[l] = cost
	}
	return out
}

// addCommonRowsWith is addCommonRows for externally supplied coefficient
// tables (the random model's Eq. 29/30 rows).
func (m *model) addCommonRowsWith(p *lp.Problem, shares [][]float64, costs []float64) {
	λ := m.net.Rate
	for i := 1; i < m.base; i++ {
		row := make([]float64, m.nVars)
		for l := 0; l < m.nVars; l++ {
			row[l] = λ * shares[l][i]
		}
		p.AddNamedConstraint(fmt.Sprintf("bandwidth[%d]", i-1), row, lp.LE, m.paths[i].Bandwidth)
	}
	if !math.IsInf(m.net.CostBound, 1) {
		row := make([]float64, m.nVars)
		for l := 0; l < m.nVars; l++ {
			row[l] = λ * costs[l]
		}
		p.AddNamedConstraint("cost", row, lp.LE, m.net.CostBound)
	}
	ones := make([]float64, m.nVars)
	for l := range ones {
		ones[l] = 1
	}
	p.AddNamedConstraint("conservation", ones, lp.EQ, 1)
}

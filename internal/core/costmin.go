package core

import (
	"fmt"
)

// SolveMinCost solves the §VI-A variant with a pooled reusable Solver:
// minimize the expected total cost per second (objective Eq. 21) subject
// to the bandwidth rows, the conservation row, and a minimum
// communication quality (Eq. 22's constraint, implemented as
// p·x ≥ minQuality; the paper writes the negated form — see DESIGN.md
// erratum #3).
//
// Returns lp.Infeasible wrapped in an error when the requested quality is
// unattainable on the given network.
func SolveMinCost(n *Network, minQuality float64) (*Solution, error) {
	s := solverPool.Get().(*Solver)
	sol, err := s.SolveMinCost(n, minQuality)
	solverPool.Put(s)
	return sol, err
}

// ErrInfeasible marks quality targets that no sending strategy can meet.
var ErrInfeasible = fmt.Errorf("core: infeasible")

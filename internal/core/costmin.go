package core

import (
	"fmt"
	"math"

	"dmc/internal/lp"
)

// SolveMinCost solves the §VI-A variant: minimize the expected total cost
// per second (objective Eq. 21) subject to the bandwidth rows, the
// conservation row, and a minimum communication quality (Eq. 22's
// constraint, implemented as p·x ≥ minQuality; the paper writes the
// negated form — see DESIGN.md erratum #3).
//
// Returns lp.Infeasible wrapped in an error when the requested quality is
// unattainable on the given network.
func SolveMinCost(n *Network, minQuality float64) (*Solution, error) {
	if math.IsNaN(minQuality) || minQuality < 0 || minQuality > 1 {
		return nil, fmt.Errorf("core: min quality %v outside [0,1]", minQuality)
	}
	m, err := newModel(n)
	if err != nil {
		return nil, err
	}

	obj := make([]float64, m.nVars)
	quality := make([]float64, m.nVars)
	shares := make([][]float64, m.nVars)
	λ := n.Rate
	for l := 0; l < m.nVars; l++ {
		c := m.combo(l)
		obj[l] = λ * m.comboCost(c) // Eq. 21: (λ·cᵢ) + (λ·τᵢ·cⱼ), generalized
		quality[l] = m.deliveryProb(c)
		shares[l] = m.sendShare(c)
	}

	p := lp.NewProblem(lp.Minimize, obj)
	for i := 1; i < m.base; i++ {
		row := make([]float64, m.nVars)
		for l := 0; l < m.nVars; l++ {
			row[l] = λ * shares[l][i]
		}
		p.AddNamedConstraint(fmt.Sprintf("bandwidth[%d]", i-1), row, lp.LE, m.paths[i].Bandwidth)
	}
	p.AddNamedConstraint("quality", quality, lp.GE, minQuality)
	ones := make([]float64, m.nVars)
	for l := range ones {
		ones[l] = 1
	}
	p.AddNamedConstraint("conservation", ones, lp.EQ, 1)

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("core: solving min-cost LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("core: quality %v unattainable on this network: %w", minQuality, ErrInfeasible)
	default:
		return nil, fmt.Errorf("core: min-cost LP unexpectedly %v", sol.Status)
	}

	s := m.newSolution(p, sol.X, 0)
	// Recompute achieved quality from the solution (the LP objective here
	// is cost, not quality).
	var q float64
	for l, x := range sol.X {
		q += x * s.delivery[l]
	}
	s.Quality = clamp01(q)
	return s, nil
}

// ErrInfeasible marks quality targets that no sending strategy can meet.
var ErrInfeasible = fmt.Errorf("core: infeasible")

// Benchmarks regenerating every table and figure of the paper (§VII), one
// per evaluation artifact, plus component micro-benchmarks for the
// substrates. Absolute times are machine-dependent; the shapes (who wins,
// how cost scales with paths and transmissions) are the reproduction
// target. See EXPERIMENTS.md.
package dmc_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dmc"
	"dmc/internal/core"
	"dmc/internal/dist"
	"dmc/internal/experiments"
	"dmc/internal/lp"
	"dmc/internal/netsim"
	"dmc/internal/scenario"
	"dmc/internal/sched"
)

// BenchmarkFigure1Scenario solves the motivating two-path example (§II).
func BenchmarkFigure1Scenario(b *testing.B) {
	n := dmc.NewNetwork(10*dmc.Mbps, time.Second,
		dmc.Path{Bandwidth: 10 * dmc.Mbps, Delay: 600 * time.Millisecond, Loss: 0.10},
		dmc.Path{Bandwidth: 1 * dmc.Mbps, Delay: 200 * time.Millisecond, Loss: 0},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := dmc.SolveQuality(n)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Quality < 1-1e-9 {
			b.Fatal("wrong quality")
		}
	}
}

// BenchmarkTable4RateSweep regenerates Table IV (top) with the exact
// rational solver.
func BenchmarkTable4RateSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Top()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkTable4LifetimeSweep regenerates Table IV (bottom) with the
// exact rational solver.
func BenchmarkTable4LifetimeSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Bottom()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 22 {
			b.Fatalf("row count %d", len(rows))
		}
	}
}

// BenchmarkFigure2RateCurve regenerates the Figure 2 (top) series at
// reduced message count (full runs live in cmd/reproduce).
func BenchmarkFigure2RateCurve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure2Top(experiments.Figure2Config{Messages: 2000, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[8].MultipathSim*100, "quality@λ90_%")
	}
}

// BenchmarkFigure2LifetimeCurve regenerates the Figure 2 (bottom) series
// at reduced message count.
func BenchmarkFigure2LifetimeCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure2Bottom(experiments.Figure2Config{Messages: 2000, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkExp2Timeouts optimizes the Eq. 34 retransmission timeouts for
// the Table V network.
func BenchmarkExp2Timeouts(b *testing.B) {
	n := experiments.TableVNetwork()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		to, err := core.OptimalTimeouts(n, core.TimeoutOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := to.Get(0, 1); !ok {
			b.Fatal("t12 undefined")
		}
	}
}

// BenchmarkExp2Simulation runs the Experiment 2 random-delay validation
// at reduced message count.
func BenchmarkExp2Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Experiment2(5000, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SimQuality()*100, "quality_%")
	}
}

// BenchmarkFigure3Sensitivity sweeps one sensitivity panel at reduced
// message count.
func BenchmarkFigure3Sensitivity(b *testing.B) {
	for _, param := range []experiments.Fig3Param{
		experiments.Fig3Bandwidth, experiments.Fig3Delay, experiments.Fig3Loss,
	} {
		b.Run(param.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Figure3(param, experiments.Figure3Config{Messages: 500, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) == 0 {
					b.Fatal("no points")
				}
			}
		})
	}
}

// BenchmarkFigure4Solve is the Figure 4 measurement itself: LP solve time
// by path count and transmissions (the paper's axes). One fixed random
// instance per size; the per-op time is the figure's y-value.
func BenchmarkFigure4Solve(b *testing.B) {
	for _, m := range []int{2, 3} {
		for _, paths := range []int{2, 4, 6, 8, 10} {
			b.Run(fmt.Sprintf("paths=%d/trans=%d", paths, m), func(b *testing.B) {
				rng := rand.New(rand.NewPCG(7, uint64(paths*10+m)))
				n := experiments.RandomNetwork(rng, paths, m)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.SolveQuality(n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScalabilitySolve measures the scalable dispatch past
// Figure 4's sizes: pruned dense enumeration and column generation on
// combination spaces up to 2.8M (paths=40/trans=4), which dense
// enumeration cannot reasonably materialize. One fixed random instance
// per size, solved with a reusable solver.
func BenchmarkScalabilitySolve(b *testing.B) {
	for _, size := range []struct{ paths, trans int }{
		{15, 3}, // 4096 combos: dominance-pruned dense
		{10, 4}, // 14641: column generation
		{20, 4}, // 194481: column generation
		{40, 4}, // 2.8M: column generation
	} {
		b.Run(fmt.Sprintf("paths=%d/trans=%d", size.paths, size.trans), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(7, uint64(size.paths*10+size.trans)))
			n := experiments.RandomNetwork(rng, size.paths, size.trans)
			solver := core.NewSolver()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveQuality(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// warmResolveRing returns a base instance plus a ring of successively
// ≤10%-drifted variants of it (λ, µ, loss, delay, bandwidth, cost all
// perturbed; shape fixed) — the §VIII-A adaptive re-solve workload.
func warmResolveRing(paths, trans, n int) (*dmc.Network, []*dmc.Network) {
	rng := rand.New(rand.NewPCG(7, uint64(paths*100+trans)))
	base := experiments.RandomNetwork(rng, paths, trans)
	ring := make([]*dmc.Network, n)
	net := base
	for i := range ring {
		net = experiments.DriftNetwork(rng, net, 0.1)
		ring[i] = net
	}
	return base, ring
}

// BenchmarkWarmResolve measures the incremental re-solve engine on a
// drift trajectory against cold solves of the identical instances, per
// dispatch regime: dense (10×3), dominance-pruned (15×3), and column
// generation (40×4, the 2.8M-combination ROADMAP target). The warm/cold
// per-op ratio at each size is the PR's headline artifact; both sides
// are gated as critical in scripts/benchcmp.
func BenchmarkWarmResolve(b *testing.B) {
	for _, size := range []struct{ paths, trans int }{
		{10, 3}, // 1331 combos: dense warm re-solve
		{15, 3}, // 4096: dominance-pruned warm re-solve
		{40, 4}, // 2.8M: column generation with persistent pool
	} {
		base, ring := warmResolveRing(size.paths, size.trans, 32)
		b.Run(fmt.Sprintf("paths=%d/trans=%d/warm", size.paths, size.trans), func(b *testing.B) {
			solver := dmc.NewSolver()
			if _, err := solver.Resolve(base); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.Resolve(ring[i%len(ring)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("paths=%d/trans=%d/cold", size.paths, size.trans), func(b *testing.B) {
			solver := dmc.NewSolver()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveQuality(ring[i%len(ring)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinCostCG measures the §VI-A min-cost solve at the ROADMAP's
// CG-scale target (40 paths × 4 transmissions, 2.8M combinations —
// beyond the old dense-only cap): the two-stage column generation with
// incremental simplex appends, on a reusable solver. Gated critical in
// scripts/benchcmp.
func BenchmarkMinCostCG(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 4010))
	n := experiments.RandomNetwork(rng, 40, 4)
	solver := core.NewSolver()
	qsol, err := solver.SolveQuality(n)
	if err != nil {
		b.Fatal(err)
	}
	floor := qsol.Quality * 0.9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := solver.SolveMinCost(n, floor)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Stats.Dispatch != core.DispatchCG {
			b.Fatalf("dispatch %v", sol.Stats.Dispatch)
		}
	}
}

// BenchmarkRandomCG measures the §VI-B random-delay solve at a path
// count whose pair space exceeds the dense threshold (120 paths, 14641
// pairs): per-pair Eq. 27–30 tabulation plus exact-scan column
// generation.
func BenchmarkRandomCG(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 1202))
	n := experiments.RandomNetwork(rng, 120, 2)
	to, err := core.DeterministicTimeouts(n, 50*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	solver := core.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := solver.SolveQualityRandom(n, to)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Stats.Dispatch != core.DispatchCG {
			b.Fatalf("dispatch %v", sol.Stats.Dispatch)
		}
	}
}

// solveManyFleet builds a 64-network fleet plus a ring of per-round
// drifted copies — the fleet-wide §VIII-A re-solve storm.
func solveManyFleet(paths, trans, size, rounds int) [][]*dmc.Network {
	rng := rand.New(rand.NewPCG(11, uint64(paths*100+trans)))
	out := make([][]*dmc.Network, rounds)
	out[0] = make([]*dmc.Network, size)
	for i := range out[0] {
		out[0][i] = experiments.RandomNetwork(rng, paths, trans)
	}
	for r := 1; r < rounds; r++ {
		out[r] = make([]*dmc.Network, size)
		for i, n := range out[r-1] {
			out[r][i] = experiments.DriftNetwork(rng, n, 0.1)
		}
	}
	return out
}

// BenchmarkSolveManyWarm measures fleet-scale batch re-solves of 64
// drifting 20-path × 4-transmission networks (194k-combination CG
// dispatch each): the shared warm pool (one pooled warm solver per
// network shape, reused across batches) against per-worker cold solves
// of the identical fleets. The warm/cold per-op ratio is the PR's
// fleet-re-solve artifact; ≥5× is the acceptance bar.
func BenchmarkSolveManyWarm(b *testing.B) {
	fleets := solveManyFleet(20, 4, 64, 8)
	b.Run("warm", func(b *testing.B) {
		pool := dmc.NewWarmPool()
		if _, err := pool.SolveMany(fleets[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.SolveMany(fleets[i%len(fleets)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dmc.SolveMany(fleets[i%len(fleets)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdaptorPoll runs the §VIII-A estimator poll loop: every
// iteration feeds an observation and polls Solution. Most polls take the
// no-drift fast path (which must not allocate — EstimatedNetwork reuses
// the Adaptor's scratch); the occasional threshold crossing re-solves on
// the Adaptor's incremental warm path.
func BenchmarkAdaptorPoll(b *testing.B) {
	n := experiments.TableIIINetwork(90, 800*time.Millisecond)
	a, err := dmc.NewAdaptor(n)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := a.Solution(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate the loss estimate between ~0% and ~33% so every
		// other poll crosses the drift threshold and re-solves warm.
		a.ObserveSend(0)
		if i%2 == 0 {
			a.ObserveLoss(0)
		}
		if _, _, err := a.Solution(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeoutCache measures the Eq. 34 table lookup under λ-only
// drift (every call after the first hits the cache).
func BenchmarkTimeoutCache(b *testing.B) {
	n := experiments.TableVNetwork()
	c := dmc.NewTimeoutCache()
	if _, err := c.OptimalTimeouts(n, dmc.TimeoutOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drifted := *n
		drifted.Rate *= 1 + float64(i%10)/100
		if _, err := c.OptimalTimeouts(&drifted, dmc.TimeoutOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverAblation compares the float simplex against the exact
// rational simplex (the CGAL analogue) on the Table IV instance.
func BenchmarkSolverAblation(b *testing.B) {
	b.Run("float", func(b *testing.B) {
		n := experiments.TableIIINetwork(90, 800*time.Millisecond)
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveQuality(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		n := experiments.ExactTableIVInstance()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveQualityExact(n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedulerAblation times one packet-assignment decision per
// selector (Algorithm 1 vs baselines).
func BenchmarkSchedulerAblation(b *testing.B) {
	n := experiments.TableIIINetwork(90, 800*time.Millisecond)
	sol, err := core.SolveQuality(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("deficit", func(b *testing.B) {
		sel, err := sched.NewDeficit(sol.X)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sel.Select()
		}
	})
	b.Run("weighted-random", func(b *testing.B) {
		sel, err := sched.NewWeightedRandom(sol.X, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sel.Select()
		}
	})
	b.Run("round-robin", func(b *testing.B) {
		sel, err := sched.NewRoundRobin(sol.X, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sel.Select()
		}
	})
}

// BenchmarkSessionExperiment1 runs a full Experiment 1 transport session
// (2000 messages) per iteration.
func BenchmarkSessionExperiment1(b *testing.B) {
	n := experiments.TableIIINetwork(90, 800*time.Millisecond)
	sol, err := core.SolveQuality(n)
	if err != nil {
		b.Fatal(err)
	}
	to, err := experiments.TrueTimeouts()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := dmc.NewSimulator(uint64(i + 1))
		res, err := dmc.RunSession(sim, dmc.SessionConfig{
			Solution:     sol,
			Timeouts:     to,
			TruePaths:    experiments.TrueLinks(),
			MessageCount: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Generated != 2000 {
			b.Fatal("workload wrong")
		}
	}
}

// BenchmarkSimulatorEvents measures raw event throughput of the
// discrete-event engine.
func BenchmarkSimulatorEvents(b *testing.B) {
	b.ReportAllocs()
	sim := netsim.NewSimulator(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, fn)
		if i%1024 == 1023 {
			sim.Run()
		}
	}
	sim.Run()
}

// BenchmarkLinkSend measures packet transfer through a bottleneck link.
func BenchmarkLinkSend(b *testing.B) {
	sim := netsim.NewSimulator(2)
	sink := 0
	link, err := netsim.NewLink(sim, netsim.LinkConfig{
		Name:      "bench",
		Bandwidth: 1e9,
		Delay:     dist.Deterministic{D: time.Millisecond},
		Loss:      0.01,
	}, func(netsim.Packet) { sink++ })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		link.Send(netsim.Packet{Bytes: 1024})
		if i%1024 == 1023 {
			sim.Run()
		}
	}
	sim.Run()
}

// BenchmarkGammaSample measures shifted-gamma variate generation
// (Marsaglia–Tsang).
func BenchmarkGammaSample(b *testing.B) {
	g := dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < b.N; i++ {
		_ = g.Sample(rng)
	}
}

// BenchmarkGammaTail measures the upper incomplete gamma continued
// fraction.
func BenchmarkGammaTail(b *testing.B) {
	g := dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		_ = g.Tail(500 * time.Millisecond)
	}
}

// BenchmarkSumTail measures one convolution-based tail evaluation of a
// delay sum — the inner loop of Eq. 34 timeout optimization.
func BenchmarkSumTail(b *testing.B) {
	g1 := dist.ShiftedGamma{Loc: 400 * time.Millisecond, Shape: 10, Scale: 4 * time.Millisecond}
	g2 := dist.ShiftedGamma{Loc: 100 * time.Millisecond, Shape: 5, Scale: 2 * time.Millisecond}
	s := dist.NewSumNodes(g1, g2, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Tail(615 * time.Millisecond)
	}
}

// BenchmarkSolveMany measures the batch solve API on a fleet of Figure 4
// sized instances (per-op time covers the whole batch).
func BenchmarkSolveMany(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 27))
	nets := make([]*dmc.Network, 64)
	for i := range nets {
		nets[i] = experiments.RandomNetwork(rng, 6, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := dmc.SolveMany(nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(sols) != len(nets) {
			b.Fatal("missing solutions")
		}
	}
}

// BenchmarkLPLargeAspect solves the characteristic LP shape of this
// paper: many columns (combinations), few rows (paths + cost +
// conservation).
func BenchmarkLPLargeAspect(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, paths := range []int{5, 10} {
		b.Run(fmt.Sprintf("paths=%d/trans=3", paths), func(b *testing.B) {
			prob, err := experiments.LPBuildOnly(rng, paths, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lp.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serveFleetBodies pre-marshals /v1/solve request bodies for a drifting
// fleet: rounds × size wire requests over the same session IDs.
func serveFleetBodies(fleets [][]*dmc.Network) [][][]byte {
	out := make([][][]byte, len(fleets))
	for r, fleet := range fleets {
		out[r] = make([][]byte, len(fleet))
		for i, n := range fleet {
			buf, err := json.Marshal(scenario.SolveRequest{
				Solve:     scenario.Solve{Network: scenario.FromNetwork(n)},
				SessionID: fmt.Sprintf("sat-%05d", i),
			})
			if err != nil {
				panic(err)
			}
			out[r][i] = buf
		}
	}
	return out
}

// serveClient keeps enough idle connections for a saturating client
// fleet — http.DefaultTransport caps idle conns per host at 2, which
// would put a TCP handshake on nearly every request.
var serveClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 256,
}}

// serveSweep posts one whole fleet round to the daemon from bounded
// concurrent clients, failing on any non-200 (a 429 means admission
// dropped a session).
func serveSweep(url string, bodies [][]byte) error {
	workers := 64
	if len(bodies) < workers {
		workers = len(bodies)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(bodies); i += workers {
				resp, err := serveClient.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs[w] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[w] = fmt.Errorf("session %d: status %d (a 429 means admission dropped a session)", i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// BenchmarkServeSaturation measures the daemon under fleet re-solve
// sweeps (one whole drifting fleet round per op) against the same
// sweeps on the library's WarmPool directly, in two regimes. sessions=64
// is CG-scale (20 paths × 4 transmissions per session): per-solve work
// dominates, and the daemon/library per-op ratio is the serving tax —
// HTTP, wave coalescing, and session registry on top of identical keyed
// warm solves; within 2× is the acceptance bar. sessions=10240 is the
// admission sweep (tiny dense solves, transport-bound): its artifact is
// that backpressure never drops a session — any 429 fails the
// benchmark. Gated critical in scripts/benchcmp.
func BenchmarkServeSaturation(b *testing.B) {
	for _, size := range []struct{ sessions, paths, trans, rounds int }{
		{64, 20, 4, 8},
		{10240, 3, 2, 4},
	} {
		fleets := solveManyFleet(size.paths, size.trans, size.sessions, size.rounds)

		b.Run(fmt.Sprintf("sessions=%d/library", size.sessions), func(b *testing.B) {
			pool := dmc.NewWarmPool()
			if _, err := pool.SolveMany(fleets[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.SolveMany(fleets[i%len(fleets)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size.sessions)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})

		b.Run(fmt.Sprintf("sessions=%d/daemon", size.sessions), func(b *testing.B) {
			bodies := serveFleetBodies(fleets)
			srv, err := dmc.NewServer(dmc.ServeConfig{})
			if err != nil {
				b.Fatalf("NewServer: %v", err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			url := ts.URL + "/v1/solve"

			if err := serveSweep(url, bodies[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := serveSweep(url, bodies[i%len(bodies)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(size.sessions)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
			m := srv.Metrics()
			var p99, rejected float64
			for _, sm := range m.Shards {
				if sm.P99Ms > p99 {
					p99 = sm.P99Ms
				}
				rejected += float64(sm.Rejected)
			}
			b.ReportMetric(p99, "p99_ms")
			if rejected > 0 {
				b.Fatalf("%v sessions rejected by admission control", rejected)
			}
			if n := srv.Sessions(); n != size.sessions {
				b.Fatalf("daemon tracks %d sessions, want %d", n, size.sessions)
			}
		})
	}
}

// Command mpsim runs a full deadline-aware multipath transport simulation
// from a JSON scenario: the sender solves on the "model" network and the
// packets traverse the "true" one (omit "true" to assume an accurate
// model).
//
// Usage:
//
//	mpsim -in scenario.json
//	cat scenario.json | mpsim
//
// The input schema (internal/scenario):
//
//	{
//	  "model": { ...network... },
//	  "true":  { ...network... },      // optional ground truth
//	  "messages": 100000,              // defaults to the paper's workload
//	  "seed": 1,
//	  "timeout_margin_ms": 100,
//	  "fast_retransmit_dups": 0,       // §VIII-D extension
//	  "ack_window": 0                  // §VIII-C vector acks
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dmc/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mpsim", flag.ContinueOnError)
	in := fs.String("in", "", "input JSON file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var sim scenario.Simulation
	if err := scenario.Load(r, &sim); err != nil {
		return err
	}
	res, sol, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "model quality (LP bound): %.4f (%.2f%%)\n", sol.Quality, sol.Quality*100)
	fmt.Fprintf(stdout, "simulated:                %.4f (%.2f%%)\n", res.Quality(), res.Quality()*100)
	fmt.Fprintln(stdout, res)
	for i, st := range res.PathStats {
		fmt.Fprintf(stdout, "path %d: accepted %d, delivered %d, loss %.2f%%, queue drops %d, mean queue %v, max queue %v\n",
			i+1, st.Accepted, st.Delivered, st.LossRate()*100, st.QueueDrops,
			st.MeanQueueDelay(), st.MaxQueueDelay)
	}
	fmt.Fprintf(stdout, "acks: sent %d, received %d (link loss %.2f%%)\n",
		res.AcksSent, res.AcksReceived, res.AckStats.LossRate()*100)
	fmt.Fprintf(stdout, "delivery latency: %s\n", res.Latency.Quantiles())

	for _, cs := range sol.ActiveCombos(1e-9) {
		fmt.Fprintf(stdout, "strategy %-8s share %.4g\n", cs.Combo, cs.Fraction)
	}
	return nil
}

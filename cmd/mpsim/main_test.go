package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const scenarioJSON = `{
	"model": {
		"rate_mbps": 90, "lifetime_ms": 800,
		"paths": [
			{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
			{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
		]
	},
	"true": {
		"rate_mbps": 90, "lifetime_ms": 800,
		"paths": [
			{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 400, "loss": 0.2},
			{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 100}
		]
	},
	"messages": 3000,
	"seed": 7
}`

func TestSimulationRun(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(scenarioJSON), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"model quality (LP bound): 0.9333",
		"simulated:",
		"path 1:",
		"path 2:",
		"acks:",
		"delivery latency: p50=",
		"strategy",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimulationFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(scenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulated:") {
		t.Error("file input failed")
	}
}

func TestSimulationErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("nope"), &out); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := run([]string{"-in", "/missing.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := `{"model": {"rate_mbps": -1, "lifetime_ms": 1, "paths": [{"bandwidth_mbps": 1}]}}`
	if err := run(nil, strings.NewReader(bad), &out); err == nil {
		t.Error("invalid model accepted")
	}
}

// Command mpopt solves a deadline-aware multipath optimization from a
// JSON network description.
//
// Usage:
//
//	mpopt -in network.json                 # maximize quality (Eq. 10)
//	mpopt -in network.json -objective mincost -min-quality 0.95
//	mpopt -in network.json -objective random   # §VI-B random delays
//	cat network.json | mpopt               # reads stdin without -in
//
// The input schema (internal/scenario):
//
//	{
//	  "rate_mbps": 90, "lifetime_ms": 800,
//	  "paths": [
//	    {"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
//	    {"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
//	  ]
//	}
//
// Paths may carry "delay_gamma": {"loc_ms", "shape", "scale_ms"} for the
// random-delay model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dmc/internal/core"
	"dmc/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpopt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mpopt", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input JSON file (default: stdin)")
		objective  = fs.String("objective", "quality", "quality | mincost | random")
		minQuality = fs.Float64("min-quality", 0.9, "quality floor for -objective mincost")
		exact      = fs.Bool("exact", false, "solve with exact rational arithmetic (quality objective only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var jn scenario.Network
	if err := scenario.Load(r, &jn); err != nil {
		return err
	}
	n, err := jn.ToNetwork()
	if err != nil {
		return err
	}

	switch *objective {
	case "quality":
		if *exact {
			en, err := core.ExactFromFloat(n)
			if err != nil {
				return err
			}
			sol, err := core.SolveQualityExact(en)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, sol)
			return nil
		}
		sol, err := core.SolveQuality(n)
		if err != nil {
			return err
		}
		printSolution(stdout, n, sol)
		return nil

	case "mincost":
		sol, err := core.SolveMinCost(n, *minQuality)
		if err != nil {
			return err
		}
		printSolution(stdout, n, sol)
		fmt.Fprintf(stdout, "total cost: %.4g per second (quality floor %.2f%%)\n", sol.Cost(), *minQuality*100)
		return nil

	case "random":
		to, err := core.OptimalTimeouts(n, core.TimeoutOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "optimized timeouts: %v\n", to)
		sol, err := core.SolveQualityRandom(n, to)
		if err != nil {
			return err
		}
		printSolution(stdout, n, sol)
		return nil

	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
}

func printSolution(w io.Writer, n *core.Network, sol *core.Solution) {
	fmt.Fprintf(w, "quality Q = %.4f (%.2f%% of λ = %.4g Mbps arrives within %v)\n",
		sol.Quality, sol.Quality*100, n.Rate/core.Mbps, n.Lifetime)
	fmt.Fprintln(w, "strategy (combination = transmission path, then retransmission path; 0 = drop):")
	for _, cs := range sol.ActiveCombos(1e-9) {
		fmt.Fprintf(w, "  %-8s share %-8.4g delivers %.4f\n", cs.Combo, cs.Fraction, cs.DeliveryProb)
	}
	for i, p := range n.Paths {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("path %d", i+1)
		}
		fmt.Fprintf(w, "  %-8s sends %.4g / %.4g Mbps\n", name, sol.SentRate(i)/core.Mbps, p.Bandwidth/core.Mbps)
	}
	if drop := sol.DropRate(); drop > 0 {
		fmt.Fprintf(w, "  dropped  %.4g Mbps via blackhole\n", drop/core.Mbps)
	}
	if timeouts := sol.Timeouts(0); len(timeouts) > 0 {
		fmt.Fprintf(w, "retransmission timeouts (Eq. 4, no margin): ")
		for i, t := range timeouts {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "t%d=%v", i+1, t.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}

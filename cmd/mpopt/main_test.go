package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tableIIIJSON = `{
	"rate_mbps": 90, "lifetime_ms": 800,
	"paths": [
		{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
		{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
	]
}`

func TestQualityObjective(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(tableIIIJSON), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "93.33%") {
		t.Errorf("output missing quality:\n%s", s)
	}
	if !strings.Contains(s, "path1") || !strings.Contains(s, "t1=600ms") {
		t.Errorf("output missing details:\n%s", s)
	}
}

func TestExactObjective(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exact"}, strings.NewReader(tableIIIJSON), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quality") {
		t.Errorf("exact output:\n%s", out.String())
	}
}

func TestMinCostObjective(t *testing.T) {
	in := `{
		"rate_mbps": 10, "lifetime_ms": 800,
		"paths": [
			{"name": "cheap", "bandwidth_mbps": 50, "delay_ms": 200, "loss": 0.3, "cost": 1},
			{"name": "pricey", "bandwidth_mbps": 50, "delay_ms": 100, "cost": 10}
		]
	}`
	var out strings.Builder
	if err := run([]string{"-objective", "mincost", "-min-quality", "1.0"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total cost: 4e+07") {
		t.Errorf("mincost output:\n%s", out.String())
	}
}

func TestRandomObjective(t *testing.T) {
	in := `{
		"rate_mbps": 90, "lifetime_ms": 750,
		"paths": [
			{"name": "p1", "bandwidth_mbps": 80, "loss": 0.2,
			 "delay_gamma": {"loc_ms": 400, "shape": 10, "scale_ms": 4}},
			{"name": "p2", "bandwidth_mbps": 20,
			 "delay_gamma": {"loc_ms": 100, "shape": 5, "scale_ms": 2}}
		]
	}`
	var out strings.Builder
	if err := run([]string{"-objective", "random"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "optimized timeouts") || !strings.Contains(s, "93.3") {
		t.Errorf("random output:\n%s", s)
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(path, []byte(tableIIIJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "93.33%") {
		t.Error("file input failed")
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("{bad json"), &out); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := run([]string{"-objective", "nonsense"}, strings.NewReader(tableIIIJSON), &out); err == nil {
		t.Error("bad objective accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-objective", "mincost", "-min-quality", "2"}, strings.NewReader(tableIIIJSON), &out); err == nil {
		t.Error("impossible quality floor accepted")
	}
}

package main

import (
	"testing"

	"dmc/internal/leak"
)

// TestMain fails the package when a test leaks daemon goroutines — a
// run() that ignores context cancellation, or an HTTP server whose
// shutdown path stalls, shows up here as a named stack.
func TestMain(m *testing.M) {
	leak.VerifyTestMain(m)
}

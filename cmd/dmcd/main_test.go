package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe strings buffer for run's stdout.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const tableIIISolve = `{"network": {
	"rate_mbps": 90, "lifetime_ms": 800,
	"paths": [
		{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
		{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
	]
}, "session_id": "boot"}`

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// solves the paper's Table III scenario over HTTP, and checks a context
// cancellation shuts it down cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shards", "1"}, &out)
	}()

	// Wait for the listen line to learn the port.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "dmcd: listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(tableIIISolve))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/solve status %d: %s", resp.StatusCode, body)
	}
	// Table III optimum: Q = 93.33%.
	if !strings.Contains(body.String(), `"quality":0.93333`) {
		t.Errorf("solve response missing Table III quality: %s", body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error on shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown log line; output: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
}

package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe strings buffer for run's stdout.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const tableIIISolve = `{"network": {
	"rate_mbps": 90, "lifetime_ms": 800,
	"paths": [
		{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
		{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
	]
}, "session_id": "boot"}`

// bootDaemon starts run in the background and waits for the listen
// line, returning the daemon's base URL and its completion channel.
func bootDaemon(t *testing.T, ctx context.Context, out *syncBuffer, args ...string) (string, chan error) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-shards", "1"}, args...), out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "dmcd: listening on "); ok {
				return "http://" + strings.TrimSpace(rest), done
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// solves the paper's Table III scenario over HTTP, and checks a context
// cancellation shuts it down cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	base, done := bootDaemon(t, ctx, &out)

	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(tableIIISolve))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/solve status %d: %s", resp.StatusCode, body)
	}
	// Table III optimum: Q = 93.33%.
	if !strings.Contains(body.String(), `"quality":0.93333`) {
		t.Errorf("solve response missing Table III quality: %s", body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error on shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown log line; output: %q", out.String())
	}
}

// TestRunRestoresState is the operator-facing durability contract: a
// daemon run with -state-dir, shut down gracefully, and restarted over
// the same dir picks its sessions back up — an estimator session
// created before the restart answers /v1/observe with 200 afterwards,
// not 409 unknown-session.
func TestRunRestoresState(t *testing.T) {
	dir := t.TempDir()
	const estSolve = `{"network": {
		"rate_mbps": 90, "lifetime_ms": 800,
		"paths": [
			{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
			{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
		]
	}, "session_id": "durable", "estimator": true}`

	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	base, done := bootDaemon(t, ctx, &out, "-state-dir", dir)
	if !strings.Contains(out.String(), "dmcd: durability on ("+dir+"): restored 0 sessions") {
		t.Errorf("missing durability boot line; output: %q", out.String())
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(estSolve))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/solve status %d", resp.StatusCode)
	}
	obs := `{"session_id": "durable", "paths": [
		{"path": 0, "sent": 100, "lost": 4, "rtt_ms": [450.5]},
		{"path": 1, "sent": 100, "lost": 0, "rtt_ms": [150.2]}
	]}`
	resp, err = http.Post(base+"/v1/observe", "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/observe status %d", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run failed on shutdown: %v", err)
	}

	// Second life: same state dir, fresh process.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncBuffer
	base2, done2 := bootDaemon(t, ctx2, &out2, "-state-dir", dir)
	if !strings.Contains(out2.String(), "restored 1 sessions") {
		t.Errorf("restart did not report the restored session; output: %q", out2.String())
	}
	resp, err = http.Post(base2+"/v1/observe", "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe after restart: status %d (session not restored?): %s", resp.StatusCode, body)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second run failed on shutdown: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-follow", "http://x"}, &out); err == nil || !strings.Contains(err.Error(), "-state-dir") {
		t.Errorf("-follow without -state-dir accepted (err: %v)", err)
	}
	if err := run(context.Background(), []string{"-follow", "http://x", "-state-dir", t.TempDir(), "-promote"}, &out); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-follow with -promote accepted (err: %v)", err)
	}
	if err := run(context.Background(), []string{"-repl-ack", "bogus", "-state-dir", t.TempDir()}, &out); err == nil {
		t.Error("bogus -repl-ack accepted")
	}
}

// TestRunFailover is the operator-facing failover drill: a primary and
// a -follow standby as two in-process daemons, a session replicated
// across, promotion via the admin endpoint swapping the standby to the
// full primary API in place, and the promoted daemon owning writes.
func TestRunFailover(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()

	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	var pout syncBuffer
	pbase, pdone := bootDaemon(t, pctx, &pout, "-state-dir", primDir)

	const estSolve = `{"network": {
		"rate_mbps": 90, "lifetime_ms": 800,
		"paths": [
			{"name": "path1", "bandwidth_mbps": 80, "delay_ms": 450, "loss": 0.2},
			{"name": "path2", "bandwidth_mbps": 20, "delay_ms": 150}
		]
	}, "session_id": "durable", "estimator": true}`
	resp, err := http.Post(pbase+"/v1/solve", "application/json", strings.NewReader(estSolve))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/solve status %d", resp.StatusCode)
	}

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	var fout syncBuffer
	fbase, fdone := bootDaemon(t, fctx, &fout, "-state-dir", folDir, "-follow", pbase)
	if !strings.Contains(fout.String(), "dmcd: following "+pbase) {
		t.Errorf("missing follower boot line; output: %q", fout.String())
	}

	// The standby serves the replicated session degraded once the stream
	// delivers it (its first poll takes a snapshot reset transfer).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(fbase+"/v1/solve", "application/json", strings.NewReader(estSolve))
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !strings.Contains(body.String(), `"degraded":true`) {
				t.Fatalf("standby answer not marked degraded: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never replicated the session; last status %d: %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And it refuses writes while a standby.
	resp, err = http.Post(fbase+"/v1/observe", "application/json",
		strings.NewReader(`{"session_id": "durable", "paths": [{"path": 0, "sent": 10, "lost": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby observe: status %d, want 503", resp.StatusCode)
	}

	// The primary dies; the admin endpoint promotes the standby in
	// place — same process, same listener, now the full primary API.
	pcancel()
	if err := <-pdone; err != nil {
		t.Fatalf("primary run failed on shutdown: %v", err)
	}
	resp, err = http.Post(fbase+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/promote status %d", resp.StatusCode)
	}
	if !strings.Contains(fout.String(), "dmcd: PROMOTED to primary at epoch") {
		t.Errorf("missing promotion log line; output: %q", fout.String())
	}

	// Writes now land on the promoted daemon.
	resp, err = http.Post(fbase+"/v1/observe", "application/json",
		strings.NewReader(`{"session_id": "durable", "paths": [{"path": 0, "sent": 10, "lost": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe after promotion: status %d: %s", resp.StatusCode, body)
	}

	fcancel()
	if err := <-fdone; err != nil {
		t.Fatalf("promoted run failed on shutdown: %v", err)
	}
}

// TestRunPromoteFlag: -promote boots a follower's state dir as the new
// primary, announcing the bumped epoch.
func TestRunPromoteFlag(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	_, done := bootDaemon(t, ctx, &out, "-state-dir", dir)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run failed on shutdown: %v", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncBuffer
	_, done2 := bootDaemon(t, ctx2, &out2, "-state-dir", dir, "-promote")
	if !strings.Contains(out2.String(), "dmcd: PROMOTED to primary at epoch 1") {
		t.Errorf("missing promotion boot line; output: %q", out2.String())
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("promoted run failed on shutdown: %v", err)
	}
}

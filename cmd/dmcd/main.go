// Command dmcd is the online solver daemon: a long-lived HTTP/JSON
// service answering deadline-aware multipath optimization requests over
// sharded warm-solver pools, so a fleet of sessions under drifting
// estimates re-solves incrementally instead of from scratch.
//
// Usage:
//
//	dmcd -addr :7117
//	dmcd -addr :7117 -shards 4 -batch-window 500us -queue 2048
//
// API (JSON bodies; schema in internal/scenario):
//
//	POST   /v1/solve        {"network": {...}, "objective": "quality|mincost|random",
//	                         "min_quality": 0.95, "timeout": {...},
//	                         "session_id": "s1", "estimator": true}
//	POST   /v1/observe      {"session_id": "s1", "paths": [{"path": 0, "sent": 100,
//	                         "lost": 3, "rtt_ms": [42.1]}]}
//	DELETE /v1/session/{id}
//	GET    /metrics
//	GET    /healthz
//
// A session_id pins requests to a session-keyed warm solver (LP basis
// and column-pool affinity across re-solves); "estimator": true attaches
// a §VIII-A estimator feed that /v1/observe measurements drive, warm
// re-solving only when the estimates drift. A full shard queue answers
// 429 with a Retry-After hint. SIGINT/SIGTERM shut down gracefully:
// admitted solves drain before the process exits.
//
// -state-dir makes sessions durable: acknowledged session state (the
// scenario/objective binding, estimator counters, last good strategy)
// is journaled with fsync before the response, compacted into periodic
// snapshots, and restored at the next boot — even after kill -9, which
// at worst leaves a torn journal suffix that boot truncates. See the
// README's "Durability & restart".
//
// Failure containment (see the README's "Failure modes & degradation"):
// "budget_ms" per request bounds queue wait (504 when it expires,
// capped by -max-budget), per-shard circuit breakers fail fast with 503
// while the solver is faulting (-breaker-threshold, -breaker-cooldown,
// -serve-degraded), and solver panics answer 500 while the poisoned
// session solver is quarantined. DMC_FAULT_POINTS/DMC_FAULT_SEED
// activate the deterministic fault-injection harness (chaos drills
// only — never in production).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmc/internal/fault"
	"dmc/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmcd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dmcd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":7117", "listen address")
		shards      = fs.Int("shards", 0, "warm-pool shards (0 = GOMAXPROCS)")
		batchWindow = fs.Duration("batch-window", 0, "wave coalescing window (0 = 500µs, negative = none)")
		maxBatch    = fs.Int("max-batch", 0, "max solves per wave (0 = 256)")
		queue       = fs.Int("queue", 0, "admitted-task queue bound per shard (0 = 1024)")
		estTol      = fs.Float64("est-tol", 0, "estimator re-solve drift tolerance (0 = adaptor default)")
		maxBudget   = fs.Duration("max-budget", 0, "deadline-budget cap and default (0 = 30s, negative = no default)")
		brkThresh   = fs.Int("breaker-threshold", 0, "consecutive solver faults tripping a shard breaker (0 = 8, negative = off)")
		brkCooldown = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 2s)")
		degraded    = fs.Bool("serve-degraded", false, "serve a session's last good strategy while its breaker is open")
		stateDir    = fs.String("state-dir", "", "session durability dir: snapshot+journal written here, sessions restored at boot (empty = no persistence)")
		snapBytes   = fs.Int64("snapshot-bytes", 0, "journal size triggering a compacting snapshot (0 = 4MB, negative = only final snapshot)")
		noSync      = fs.Bool("journal-nosync", false, "skip per-record journal fsync (faster appends, crash may lose the tail)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Chaos drills: an operator (or the chaos-smoke CI job) can arm the
	// deterministic fault injectors from the environment.
	if plan, err := fault.FromEnv(); err != nil {
		return err
	} else if plan != nil {
		fault.Activate(plan)
		fmt.Fprintf(stdout, "dmcd: fault injection ARMED (seed %d) at points %v\n", plan.Seed, fault.Points())
	}

	srv, err := serve.New(serve.Config{
		Shards:           *shards,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		MaxQueue:         *queue,
		EstimatorRelTol:  *estTol,
		MaxBudget:        *maxBudget,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ServeDegraded:    *degraded,
		StateDir:         *stateDir,
		SnapshotBytes:    *snapBytes,
		JournalNoSync:    *noSync,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *stateDir != "" {
		fmt.Fprintf(stdout, "dmcd: durability on (%s): restored %d sessions\n", *stateDir, srv.Metrics().Durability.RestoredSessions)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dmcd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Stop accepting, let in-flight HTTP requests finish, then drain the
	// solver waves.
	fmt.Fprintln(stdout, "dmcd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

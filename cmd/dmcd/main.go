// Command dmcd is the online solver daemon: a long-lived HTTP/JSON
// service answering deadline-aware multipath optimization requests over
// sharded warm-solver pools, so a fleet of sessions under drifting
// estimates re-solves incrementally instead of from scratch.
//
// Usage:
//
//	dmcd -addr :7117
//	dmcd -addr :7117 -shards 4 -batch-window 500us -queue 2048
//	dmcd -addr :7117 -state-dir /var/lib/dmcd -repl-ack sync
//	dmcd -addr :7118 -state-dir /var/lib/dmcd-standby -follow http://primary:7117
//
// API (JSON bodies; schema in internal/scenario):
//
//	POST   /v1/solve        {"network": {...}, "objective": "quality|mincost|random",
//	                         "min_quality": 0.95, "timeout": {...},
//	                         "session_id": "s1", "estimator": true}
//	POST   /v1/observe      {"session_id": "s1", "paths": [{"path": 0, "sent": 100,
//	                         "lost": 3, "rtt_ms": [42.1]}]}
//	DELETE /v1/session/{id}
//	GET    /v1/replicate    follower journal stream (persistence only)
//	POST   /v1/promote      follower-only: promote this standby to primary
//	GET    /metrics
//	GET    /healthz
//
// A session_id pins requests to a session-keyed warm solver (LP basis
// and column-pool affinity across re-solves); "estimator": true attaches
// a §VIII-A estimator feed that /v1/observe measurements drive, warm
// re-solving only when the estimates drift. A full shard queue answers
// 429 with a Retry-After hint. SIGINT/SIGTERM shut down gracefully:
// admitted solves drain before the process exits.
//
// -state-dir makes sessions durable: acknowledged session state (the
// scenario/objective binding, estimator counters, last good strategy)
// is journaled with fsync before the response, compacted into periodic
// snapshots, and restored at the next boot — even after kill -9, which
// at worst leaves a torn journal suffix that boot truncates. See the
// README's "Durability & restart".
//
// Replication (see the README's "Replication & failover"): a primary
// with -state-dir streams its journal to hot standbys started with
// -follow <primary-url>. -repl-ack sync withholds 2xx until a follower
// has durably applied the record ("acknowledged means replicated");
// the default async mode acknowledges on local fsync. A standby is
// promoted by POST /v1/promote (in place, same process) or by
// restarting it with -promote; either way the new primary's epoch
// fences the old one, whose stale incarnation is refused on rejoin and
// resyncs as a follower via a snapshot reset transfer.
//
// Failure containment (see the README's "Failure modes & degradation"):
// "budget_ms" per request bounds queue wait (504 when it expires,
// capped by -max-budget), per-shard circuit breakers fail fast with 503
// while the solver is faulting (-breaker-threshold, -breaker-cooldown,
// -serve-degraded), and solver panics answer 500 while the poisoned
// session solver is quarantined. DMC_FAULT_POINTS/DMC_FAULT_SEED
// activate the deterministic fault-injection harness (chaos drills
// only — never in production).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dmc/internal/fault"
	"dmc/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmcd:", err)
		os.Exit(1)
	}
}

// handlerSwitch is an http.Handler whose target swaps atomically — how
// an in-place promotion replaces the follower's read-only API with the
// full primary API without rebinding the listener.
type handlerSwitch struct{ h atomic.Value }

func (hs *handlerSwitch) set(h http.Handler) { hs.h.Store(h) }

func (hs *handlerSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hs.h.Load().(http.Handler).ServeHTTP(w, r)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dmcd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":7117", "listen address")
		shards      = fs.Int("shards", 0, "warm-pool shards (0 = GOMAXPROCS)")
		batchWindow = fs.Duration("batch-window", 0, "wave coalescing window (0 = 500µs, negative = none)")
		maxBatch    = fs.Int("max-batch", 0, "max solves per wave (0 = 256)")
		queue       = fs.Int("queue", 0, "admitted-task queue bound per shard (0 = 1024)")
		estTol      = fs.Float64("est-tol", 0, "estimator re-solve drift tolerance (0 = adaptor default)")
		maxBudget   = fs.Duration("max-budget", 0, "deadline-budget cap and default (0 = 30s, negative = no default)")
		brkThresh   = fs.Int("breaker-threshold", 0, "consecutive solver faults tripping a shard breaker (0 = 8, negative = off)")
		brkCooldown = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 2s)")
		degraded    = fs.Bool("serve-degraded", false, "serve a session's last good strategy while its breaker is open")
		stateDir    = fs.String("state-dir", "", "session durability dir: snapshot+journal written here, sessions restored at boot (empty = no persistence)")
		snapBytes   = fs.Int64("snapshot-bytes", 0, "journal size triggering a compacting snapshot (0 = 4MB, negative = only final snapshot)")
		noSync      = fs.Bool("journal-nosync", false, "skip per-record journal fsync (faster appends, crash may lose the tail)")
		follow      = fs.String("follow", "", "run as a hot-standby follower replicating from this primary URL (requires -state-dir)")
		promote     = fs.Bool("promote", false, "boot as the new primary from a follower's state dir, bumping the fencing epoch")
		replAck     = fs.String("repl-ack", "", `replication acknowledgement mode: "async" (default: acks on local fsync) or "sync" (withholds 2xx until a follower acks)`)
		replAckTo   = fs.Duration("repl-ack-timeout", 0, "sync mode: how long a write waits for a follower ack before failing (0 = 5s)")
		replLagWarn = fs.Int64("repl-lag-warn", 0, "follower lag in journal bytes beyond which /healthz degrades (0 = snapshot-bytes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Chaos drills: an operator (or the chaos-smoke CI job) can arm the
	// deterministic fault injectors from the environment.
	if plan, err := fault.FromEnv(); err != nil {
		return err
	} else if plan != nil {
		fault.Activate(plan)
		fmt.Fprintf(stdout, "dmcd: fault injection ARMED (seed %d) at points %v\n", plan.Seed, fault.Points())
	}

	cfg := serve.Config{
		Shards:           *shards,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		MaxQueue:         *queue,
		EstimatorRelTol:  *estTol,
		MaxBudget:        *maxBudget,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ServeDegraded:    *degraded,
		StateDir:         *stateDir,
		SnapshotBytes:    *snapBytes,
		JournalNoSync:    *noSync,
		ReplAck:          *replAck,
		ReplAckTimeout:   *replAckTo,
		ReplLagWarn:      *replLagWarn,
		Promote:          *promote,
	}

	if *follow != "" {
		if *stateDir == "" {
			return errors.New("-follow requires -state-dir (the follower journals the replicated stream)")
		}
		if *promote {
			return errors.New("-follow and -promote are mutually exclusive: -promote boots a former follower's state dir as the new primary")
		}
		return runFollower(ctx, cfg, *follow, *addr, stdout)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *stateDir != "" {
		fmt.Fprintf(stdout, "dmcd: durability on (%s): restored %d sessions\n", *stateDir, srv.Metrics().Durability.RestoredSessions)
		fmt.Fprintf(stdout, "dmcd: replication %s (epoch %d)\n", srv.Metrics().Replication.Mode, srv.Epoch())
	}
	if *promote {
		fmt.Fprintf(stdout, "dmcd: PROMOTED to primary at epoch %d; the old primary is fenced\n", srv.Epoch())
	}
	return serveHTTP(ctx, *addr, srv.Handler(), stdout, srv.QuiesceReplication, nil)
}

// runFollower runs the hot-standby loop: replicate from the primary,
// serve the degraded read-only API, and promote in place when asked.
func runFollower(ctx context.Context, cfg serve.Config, primary, addr string, stdout io.Writer) error {
	sw := &handlerSwitch{}
	var (
		pmu      sync.Mutex
		promoted *serve.Server
		fol      *serve.Follower
	)
	id, _ := os.Hostname()
	f, err := serve.NewFollower(serve.FollowerConfig{
		Primary:  primary,
		StateDir: cfg.StateDir,
		ID:       id,
		OnPromote: func() error {
			pmu.Lock()
			defer pmu.Unlock()
			if promoted != nil {
				return nil // already promoted; the retry is idempotent
			}
			srv, err := fol.Promote(cfg)
			if err != nil {
				return err
			}
			promoted = srv
			sw.set(srv.Handler())
			fmt.Fprintf(stdout, "dmcd: PROMOTED to primary at epoch %d; the old primary is fenced\n", srv.Epoch())
			return nil
		},
	})
	if err != nil {
		return err
	}
	fol = f
	sw.set(fol.Handler())
	fmt.Fprintf(stdout, "dmcd: following %s (replicated %d sessions so far)\n", primary, fol.Sessions())

	return serveHTTP(ctx, addr, sw, stdout,
		func() {
			// If promotion happened, this process is now a primary with
			// followers possibly parked in long polls; wake them so the
			// HTTP drain is not held hostage.
			pmu.Lock()
			defer pmu.Unlock()
			if promoted != nil {
				promoted.QuiesceReplication()
			}
		},
		func() {
			// Shut down whichever role the process holds by now. Promotion
			// holds pmu across the swap, so this cannot observe a half-state.
			pmu.Lock()
			defer pmu.Unlock()
			if promoted != nil {
				promoted.Close()
			} else {
				fol.Close()
			}
		})
}

// serveHTTP binds addr and serves handler until ctx is canceled, then
// shuts down gracefully: run quiesce (waking replication long-polls
// that would stall the drain), stop accepting, drain in-flight HTTP,
// then run closeFn (which drains the solver/replication side).
//
// The timeouts harden the listener against slow clients (slowloris
// headers, stalled bodies, dead keep-alives). The replication long poll
// legitimately outlives ReadTimeout/WriteTimeout; its handler lifts
// both per-request via http.ResponseController rather than this server
// going unbounded for everyone.
func serveHTTP(ctx context.Context, addr string, handler http.Handler, stdout io.Writer, quiesce, closeFn func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dmcd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Stop accepting, let in-flight HTTP requests finish, then drain the
	// solver waves.
	fmt.Fprintln(stdout, "dmcd: shutting down")
	if quiesce != nil {
		quiesce()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if closeFn != nil {
		closeFn()
	}
	return nil
}

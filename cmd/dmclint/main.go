// Command dmclint runs the project's analyzer suite
// (internal/analysis/dmclint): faultpoint, lockheld, poolescape, and
// atomicmix — the machine-checked forms of the repo's fault-injection,
// lock-discipline, pool-aliasing, and atomic-access invariants.
//
// Standalone mode loads whole packages and runs module-global checks:
//
//	go run ./cmd/dmclint ./...          # what `make lint` does
//	go run ./cmd/dmclint ./internal/serve
//
// It exits 1 when any diagnostic is reported, 2 on operational errors.
//
// The same binary speaks the `go vet -vettool` protocol, which
// additionally covers test compilations (standalone mode sees the same
// compilations `go build` does):
//
//	go build -o dmclint ./cmd/dmclint
//	go vet -vettool=$(pwd)/dmclint ./...
//
// Vet units analyze one package per process, so the module-global
// Finish checks (cross-package fault-point uniqueness) run only in
// standalone mode; facts still flow between vet units through .vetx
// files.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dmc/internal/analysis/dmcana"
	"dmc/internal/analysis/dmclint"
)

func main() {
	args := os.Args[1:]

	// `go vet` handshake: -V=full keys the build cache on the tool's
	// identity — a hash of the executable, so a rebuilt tool invalidates
	// cached vet results; -flags asks which flags the tool accepts
	// (none).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progname(), selfID())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	// Standalone: load the named patterns (default ./...) and run the
	// full suite, Finish hooks included.
	patterns := args
	m, err := dmcana.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := dmcana.Run(m, dmclint.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func progname() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// selfID hashes the running executable, giving `go vet` a cache key
// that changes exactly when the tool's code does.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:16])
}

// vetConfig is the unit description `go vet` hands the tool (the fields
// cmd/go's work.VetFlags writes that this driver consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFile is what one unit persists for its dependents: the analyzed
// package's facts, keyed by analyzer name. Concrete fact types are
// gob-registered from each Analyzer.FactType.
type vetxFile struct {
	Facts map[string]any
}

// vetUnit analyzes one package under the `go vet -vettool` protocol and
// returns the process exit code: 0 clean, 2 diagnostics (vet's
// convention), 1 operational failure.
func vetUnit(cfgPath string) int {
	for _, a := range dmclint.All {
		if a.FactType != nil {
			gob.Register(a.FactType)
		}
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dmclint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled,
	// after canonicalizing through ImportMap (vendoring, "C", test
	// variants).
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("dmclint: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := dmcana.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Seed dependency facts from the .vetx files of units that already
	// ran (cmd/go schedules dependencies first).
	facts := dmcana.NewFactSet()
	for depPath, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue // no facts recorded for that dependency
		}
		var vf vetxFile
		err = gob.NewDecoder(f).Decode(&vf)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmclint: decoding facts %s: %v\n", vetx, err)
			return 1
		}
		for analyzer, v := range vf.Facts {
			facts.Put(analyzer, depPath, v)
		}
	}

	m := &dmcana.Module{Fset: fset, Pkgs: []*dmcana.Package{{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}}}
	diags, err := dmcana.RunPackages(m, dmclint.All, facts, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if cfg.VetxOutput != "" {
		vf := vetxFile{Facts: map[string]any{}}
		for _, a := range dmclint.All {
			if v, ok := facts.Get(a.Name, cfg.ImportPath); ok {
				vf.Facts[a.Name] = v
			}
		}
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := gob.NewEncoder(f).Encode(&vf); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

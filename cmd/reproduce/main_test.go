package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunSelectedExperiments smoke-runs each experiment at tiny scale and
// checks the CSV side outputs. Table IV runs exact and is asserted by the
// experiments package's own tests; here we only cover the wiring.
func TestRunSelectedExperiments(t *testing.T) {
	csvDir := filepath.Join(t.TempDir(), "csv")
	err := run([]string{
		"-table4", "-exp2", "-fig4",
		"-messages", "500",
		"-fig4runs", "2",
		"-csv", csvDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table4_top.csv", "table4_bottom.csv", "figure4.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, f)); err != nil {
			t.Errorf("missing CSV %s: %v", f, err)
		}
	}
}

func TestRunFig2AndFig3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps")
	}
	csvDir := filepath.Join(t.TempDir(), "csv")
	err := run([]string{
		"-fig2", "-fig3", "-ablation",
		"-messages", "400",
		"-csv", csvDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"figure2_top.csv", "figure2_bottom.csv",
		"figure3_bandwidth.csv", "figure3_delay.csv", "figure3_loss.csv",
	} {
		if _, err := os.Stat(filepath.Join(csvDir, f)); err != nil {
			t.Errorf("missing CSV %s: %v", f, err)
		}
	}
}

func TestRunNoSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no selection accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunResolveSweep smoke-runs the incremental re-solve drift sweep
// and checks its CSV side output.
func TestRunResolveSweep(t *testing.T) {
	csvDir := filepath.Join(t.TempDir(), "csv")
	if err := run([]string{"-resolve", "-csv", csvDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "resolve.csv")); err != nil {
		t.Errorf("missing CSV resolve.csv: %v", err)
	}
}

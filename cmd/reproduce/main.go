// Command reproduce regenerates every table and figure of the paper's
// evaluation (§VII) and the DESIGN.md ablations, printing paper-style
// text tables to stdout.
//
// Usage:
//
//	reproduce -all                    # everything, full 100k-message runs
//	reproduce -table4 -fig2           # selected experiments
//	reproduce -all -messages 10000    # faster, reduced-fidelity pass
//
// Absolute solver times (Figure 4) depend on this machine; every other
// number is expected to match the paper as documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		table4   = fs.Bool("table4", false, "Table IV: exact optimal strategies (rate and lifetime sweeps)")
		fig2     = fs.Bool("fig2", false, "Figure 2: quality vs rate and vs lifetime, theory and simulation")
		exp2     = fs.Bool("exp2", false, "Experiment 2: random delays, optimized timeouts")
		fig3     = fs.Bool("fig3", false, "Figure 3: sensitivity to estimation errors")
		fig4     = fs.Bool("fig4", false, "Figure 4: LP solve times vs problem size")
		scale    = fs.Bool("scalability", false, "scalability sweep: pruning/column-generation dispatch, paths 10–40, m 3–5")
		mincost  = fs.Bool("mincost", false, "min-cost scalability sweep: §VI-A cost minimization at a 0.5 quality floor through the same dense/pruned/CG dispatch, paths 10–40, m 3–5")
		resolve  = fs.Bool("resolve", false, "incremental re-solve drift sweep: warm vs cold solve times on a 40-path × 4-transmission trajectory")
		ablation = fs.Bool("ablation", false, "scheduler / solver / ack-scheme ablations")
		messages = fs.Int("messages", experiments.FullMessageCount, "messages per simulation run")
		seed     = fs.Uint64("seed", 1, "base random seed")
		fig4Runs = fs.Int("fig4runs", 100, "solver timing runs per point")
		csvDir   = fs.String("csv", "", "also write plot-ready CSV files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		*table4, *fig2, *exp2, *fig3, *fig4, *scale, *mincost, *resolve, *ablation = true, true, true, true, true, true, true, true, true
	}
	if !*table4 && !*fig2 && !*exp2 && !*fig3 && !*fig4 && !*scale && !*mincost && !*resolve && !*ablation {
		fs.Usage()
		return fmt.Errorf("select experiments (or -all)")
	}

	section := func(title string) func() {
		start := time.Now()
		fmt.Printf("==== %s ====\n", title)
		return func() { fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond)) }
	}
	writeCSV := func(name, content string) error {
		if *csvDir == "" {
			return nil
		}
		return experiments.WriteCSVFile(*csvDir, name, content)
	}

	if *table4 {
		done := section("Table IV (top): optimal strategies, δ=800 ms, λ sweep [exact arithmetic]")
		rows, err := experiments.Table4Top()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable4(rows))
		if err := writeCSV("table4_top.csv", experiments.Table4CSV(rows)); err != nil {
			return err
		}
		done()

		done = section("Table IV (bottom): optimal strategies, λ=90 Mbps, δ sweep [exact arithmetic]")
		rows, err = experiments.Table4Bottom()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable4(rows))
		if err := writeCSV("table4_bottom.csv", experiments.Table4CSV(rows)); err != nil {
			return err
		}
		done()
	}

	if *fig2 {
		cfg := experiments.Figure2Config{Messages: *messages, Seed: *seed}
		done := section("Figure 2 (top): quality vs data rate, δ=800 ms")
		pts, err := experiments.Figure2Top(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFigure2(pts, "lambda (Mbps)"))
		if err := writeCSV("figure2_top.csv", experiments.Fig2CSV(pts, "lambda_mbps")); err != nil {
			return err
		}
		done()

		done = section("Figure 2 (bottom): quality vs lifetime, λ=90 Mbps")
		pts, err = experiments.Figure2Bottom(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFigure2(pts, "delta (ms)"))
		if err := writeCSV("figure2_bottom.csv", experiments.Fig2CSV(pts, "delta_ms")); err != nil {
			return err
		}
		done()
	}

	if *exp2 {
		done := section("Experiment 2: random delays (Table V), Eq. 34 timeouts")
		r, err := experiments.Experiment2(*messages, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderExperiment2(r))
		done()
	}

	if *fig3 {
		cfg := experiments.Figure3Config{Messages: *messages, Seed: *seed}
		for _, param := range []experiments.Fig3Param{
			experiments.Fig3Bandwidth, experiments.Fig3Delay, experiments.Fig3Loss,
		} {
			done := section(fmt.Sprintf("Figure 3: sensitivity to %s estimation error (λ=90 Mbps, δ=800 ms)", param))
			pts, err := experiments.Figure3(param, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure3(param, pts))
			if err := writeCSV(fmt.Sprintf("figure3_%s.csv", param), experiments.Fig3CSV(param, pts)); err != nil {
				return err
			}
			done()
		}
	}

	if *fig4 {
		done := section("Figure 4: LP solve time vs paths and transmissions")
		pts, err := experiments.Figure4(experiments.Figure4Config{Runs: *fig4Runs, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFigure4(pts))
		if err := writeCSV("figure4.csv", experiments.Fig4CSV(pts)); err != nil {
			return err
		}
		done()
	}

	if *scale {
		done := section("Scalability: dense / pruned / column-generation dispatch beyond Figure 4's sizes")
		pts, err := experiments.Scalability(experiments.ScalabilityConfig{Seed: *seed, VerifyDense: true})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScalability(pts))
		if err := writeCSV("scalability.csv", experiments.ScalabilityCSV(pts)); err != nil {
			return err
		}
		done()
	}

	if *mincost {
		done := section("Min-cost scalability: §VI-A dispatch at a 0.5 quality floor, beyond the old dense-only cap")
		pts, err := experiments.Scalability(experiments.ScalabilityConfig{Seed: *seed, VerifyDense: true, MinCost: true})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScalability(pts))
		if err := writeCSV("scalability_mincost.csv", experiments.ScalabilityCSV(pts)); err != nil {
			return err
		}
		done()
	}

	if *resolve {
		done := section("Incremental re-solve: warm vs cold on a λ/µ/loss/delay drift trajectory (40 paths × 4 transmissions)")
		pts, err := experiments.ResolveSweep(experiments.ResolveConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderResolve(pts))
		if err := writeCSV("resolve.csv", experiments.ResolveCSV(pts)); err != nil {
			return err
		}
		done()
	}

	if *ablation {
		done := section("Ablation: packet scheduler (Algorithm 1 vs baselines), Experiment 1 scenario")
		rows, err := experiments.SchedulerAblation(*messages, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSchedulerAblation(rows))
		done()

		done = section("Ablation: float simplex vs exact rational simplex")
		srows, err := experiments.SolverAblation(5, 10, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSolverAblation(srows))
		done()

		done = section("Ablation: acknowledgment scheme under 30% ack loss (§VIII-C)")
		arows, err := experiments.AckAblation(*messages/5, 0.3, *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAckAblation(arows, 0.3))
		done()
	}
	return nil
}

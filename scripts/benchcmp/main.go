// Command benchcmp diffs `go test -bench` output against a JSON baseline
// snapshot (BENCH_baseline.json style) and flags ns/op regressions.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | go run ./scripts/benchcmp \
//	    -baseline BENCH_baseline.json [-threshold 25] [-critical regexp] \
//	    [-write BENCH_new.json]
//
// Bench output is read from stdin (or -in). Exit status is 1 only when
// a benchmark matching -critical regresses by more than -threshold
// percent in ns/op; regressions elsewhere — end-to-end sweeps and
// simulations, which are too noisy on shared runners to gate merges —
// are reported as warnings. New or vanished benchmarks are reported but
// never fail the run. The default -critical set covers the solve-core
// benchmarks (LP solve, dispatch, batch, scalability), whose per-op
// times are tight enough to compare meaningfully.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// entry mirrors one benchmark record of the baseline JSON.
type entry struct {
	Iterations  int64   `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"B_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// baseline mirrors BENCH_baseline.json.
type baseline struct {
	Note       string           `json:"note,omitempty"`
	Date       string           `json:"date,omitempty"`
	Go         string           `json:"go,omitempty"`
	Benchtime  string           `json:"benchtime,omitempty"`
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	Pkg        string           `json:"pkg,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkFoo/case=1-8  123  456.7 ns/op  89 B/op  10 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.e+]+) ns/op(.*)$`)

var metricRe = regexp.MustCompile(`([\d.e+]+) (\S+)`)

func parseBench(r io.Reader) (map[string]entry, []string, error) {
	out := map[string]entry{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := entry{Iterations: iters, NsPerOp: ns}
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "B/op":
				e.BPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if _, seen := out[m[1]]; !seen {
			order = append(order, m[1])
		}
		out[m[1]] = e
	}
	return out, order, sc.Err()
}

// defaultCritical matches the solve-core benchmarks: regressions here
// fail the run, regressions in sweeps/simulations only warn. SolveMany
// also covers SolveManyWarm (the shared warm-pool fleet re-solve);
// MinCostCG is the §VI-A column-generation solve core. ServeSaturation
// gates the cmd/dmcd serving tax over the same warm fleet re-solves.
// RandomCG stays warn-only: its per-op time is dominated by
// delay-distribution table builds, too noisy to gate.
const defaultCritical = `^Benchmark(Figure1Scenario|Figure4Solve|ScalabilitySolve|WarmResolve|SolveMany|MinCostCG|LPLargeAspect|SolverAblation|ServeSaturation)`

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON snapshot to compare against")
	in := flag.String("in", "-", "bench output file (- for stdin)")
	threshold := flag.Float64("threshold", 25, "ns/op regression percentage that fails the run")
	critical := flag.String("critical", defaultCritical, "regexp of benchmarks whose regressions fail the run (others only warn)")
	write := flag.String("write", "", "also write the parsed results as a new JSON snapshot")
	flag.Parse()

	criticalRe, err := regexp.Compile(*critical)
	if err != nil {
		fatal(fmt.Errorf("bad -critical regexp: %w", err))
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	got, order, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}

	regressed, warned := 0, 0
	fmt.Printf("%-55s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range order {
		cur := got[name]
		old, ok := base.Benchmarks[name]
		if !ok || old.NsPerOp == 0 {
			fmt.Printf("%-55s %14s %14.0f %9s\n", name, "(new)", cur.NsPerOp, "")
			continue
		}
		delta := (cur.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		mark := ""
		if delta > *threshold {
			if criticalRe.MatchString(name) {
				mark = "  REGRESSION"
				regressed++
			} else {
				mark = "  regression (non-blocking)"
				warned++
			}
		}
		fmt.Printf("%-55s %14.0f %14.0f %+8.1f%%%s\n", name, old.NsPerOp, cur.NsPerOp, delta, mark)
	}
	var gone []string
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-55s %14.0f %14s\n", name, base.Benchmarks[name].NsPerOp, "(missing)")
	}

	if *write != "" {
		snap := baseline{
			Note:       "Benchmark snapshot produced by scripts/benchcmp; compare with BENCH_baseline.json.",
			Date:       time.Now().UTC().Format("2006-01-02"),
			Go:         runtime.Version(),
			Goos:       runtime.GOOS,
			Goarch:     runtime.GOARCH,
			Pkg:        "dmc",
			Benchmarks: got,
		}
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*write, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d benchmarks to %s\n", len(got), *write)
	}

	if warned > 0 {
		fmt.Printf("\n%d non-critical benchmark(s) regressed more than %.0f%% (not failing the run)\n", warned, *threshold)
	}
	if regressed > 0 {
		fmt.Printf("\n%d critical benchmark(s) regressed more than %.0f%% in ns/op\n", regressed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nno critical ns/op regressions beyond %.0f%%\n", *threshold)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(2)
}
